//! DDG simplification (paper §5, "DDG Simplification").
//!
//! Removes the computation that "does not generally characterize a pattern":
//!
//! * **traversal bookkeeping** — nodes flagged by generalized iterator
//!   recognition (induction updates and bound tests of non-counted loops);
//! * **memory-address and branch-condition computation** — integer
//!   arithmetic, comparisons, and selects whose values flow (transitively)
//!   only into address operands or branch decisions, never into data that
//!   reaches memory, floats, or program output.
//!
//! The address rule is deliberately *label-gated*: only "address-shaped"
//! operations (integer arithmetic, `icmp`/`fcmp`, `select`) may join the
//! removal cascade. Substantive integer computation (e.g. md5's mixing)
//! always flows into stored data or output and is therefore kept, while a
//! kmeans-style cluster index — consumed exclusively by subscript
//! arithmetic — is stripped together with its `select` chain, removing the
//! candidate map's outgoing arcs exactly as the paper describes for its
//! two missed kmeans maps.

use ddg::graph::NodeFlags;
use ddg::{BitSet, Ddg, NodeId};

/// Sizes before/after, for the paper's "3.82× average reduction" statistic.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimplifyStats {
    pub nodes_before: usize,
    pub nodes_after: usize,
    pub iterator_removed: usize,
    pub address_removed: usize,
}

impl SimplifyStats {
    /// The reduction factor (≥ 1.0).
    pub fn reduction(&self) -> f64 {
        if self.nodes_after == 0 {
            self.nodes_before.max(1) as f64
        } else {
            self.nodes_before as f64 / self.nodes_after as f64
        }
    }
}

/// Labels allowed to join the address/control removal cascade.
fn removable_label(label: &str) -> bool {
    matches!(
        label,
        "add"
            | "sub"
            | "mul"
            | "sdiv"
            | "srem"
            | "shl"
            | "lshr"
            | "smin"
            | "smax"
            | "select"
            | "neg"
            | "fptosi"
    ) || label.starts_with("icmp.")
        || label.starts_with("fcmp.")
}

/// Simplifies a DDG. Returns the reduced graph, the mapping from old node
/// ids to new ones, and statistics.
pub fn simplify(g: &Ddg) -> (Ddg, Vec<Option<NodeId>>, SimplifyStats) {
    let n = g.len();
    let mut removed = BitSet::new(n);
    let mut stats = SimplifyStats {
        nodes_before: n,
        ..Default::default()
    };

    // Phase 1: traversal bookkeeping.
    for id in g.node_ids() {
        if g.node(id).flags.contains(NodeFlags::ITERATOR) {
            removed.insert(id.index());
            stats.iterator_removed += 1;
        }
    }

    // Phase 2: address/control cascade to fixpoint. A node joins when its
    // label is address-shaped, it does not feed program output, and every
    // value successor has already joined. This covers nodes whose only
    // uses are addresses or branch decisions, and dead address-shaped
    // computation (a coordinate conversion short-circuited past its bounds
    // tests) — neither characterizes a pattern.
    //
    // Worklist formulation: track each node's count of live (not yet
    // removed) successors, seed with eligible nodes whose count is
    // already zero, and on every removal decrement the predecessors'
    // counts, enqueueing any that hit zero. The cascade is monotone, so
    // this reaches the same unique fixpoint as rescanning all nodes
    // until quiescence, in O(V + E) instead of O(V²) on long chains.
    let mut eligible = vec![false; n];
    let mut live_succs: Vec<u32> = vec![0; n];
    let mut work: Vec<u32> = Vec::new();
    for id in g.node_ids() {
        let i = id.index();
        if removed.contains(i) {
            continue;
        }
        let node = g.node(id);
        eligible[i] = !node.flags.contains(NodeFlags::WRITES_OUTPUT)
            && removable_label(g.label_str(node.label));
        let live = g
            .succs(id)
            .iter()
            .filter(|s| !removed.contains(s.index()))
            .count();
        live_succs[i] = live as u32;
        if eligible[i] && live == 0 {
            work.push(i as u32);
        }
    }
    while let Some(i) = work.pop() {
        let i = i as usize;
        if removed.contains(i) {
            continue;
        }
        removed.insert(i);
        stats.address_removed += 1;
        for &p in g.preds(NodeId(i as u32)) {
            let pi = p.index();
            if removed.contains(pi) {
                continue;
            }
            live_succs[pi] -= 1;
            if live_succs[pi] == 0 && eligible[pi] {
                work.push(pi as u32);
            }
        }
    }

    let keep = BitSet::full(n).difference(&removed);
    let (out, map) = g.induced(&keep);
    stats.nodes_after = out.len();
    (out, map, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_ir::{BinOp, Expr, FnBuilder, ProgramBuilder, Type};
    use trace::{run, RunConfig};

    fn simplify_run(p: &repro_ir::Program, cfg: &RunConfig) -> (Ddg, SimplifyStats) {
        let r = run(p, cfg).unwrap();
        let g = r.ddg.unwrap();
        let (s, _, stats) = simplify(&g);
        (s, stats)
    }

    #[test]
    fn strips_address_computation_keeps_data() {
        // out[i*2] = in[i] * 3.0 : the i*2 mul must vanish, the fmul stays.
        let mut pb = ProgramBuilder::new("addr");
        let inp = pb.global("in", Type::F64, 3);
        let out = pb.global("out", Type::F64, 6);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(3), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let v = f.bin(BinOp::FMul, ld, Expr::Float(3.0));
            let idx = f.bin(BinOp::Mul, Expr::Var(i), Expr::Int(2));
            vec![FnBuilder::stmt_store(out, idx, v)]
        });
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let (s, stats) = simplify_run(&p, &RunConfig::default().with_f64("in", &[1.0, 2.0, 3.0]));
        assert_eq!(stats.nodes_before, 6); // 3 muls + 3 fmuls
        assert_eq!(s.len(), 3);
        assert_eq!(stats.address_removed, 3);
        for id in s.node_ids() {
            assert_eq!(s.label_str(s.node(id).label), "fmul");
        }
    }

    #[test]
    fn cascade_removes_transitive_address_chains() {
        // idx = (i * 4) + 1 used as address: both int ops go.
        let mut pb = ProgramBuilder::new("chain");
        let inp = pb.global("in", Type::F64, 16);
        let out = pb.global("out", Type::F64, 16);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(2), |f, i| {
            let i4 = f.bin(BinOp::Mul, Expr::Var(i), Expr::Int(4));
            let idx = f.bin(BinOp::Add, i4, Expr::Int(1));
            let ld = f.load(inp, idx.clone());
            let v = f.bin(BinOp::FAdd, ld, Expr::Float(1.0));
            vec![FnBuilder::stmt_store(out, idx, v)]
        });
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let (s, stats) = simplify_run(&p, &RunConfig::default().with_len("in", 16));
        // Note idx is evaluated twice per iteration (load and store).
        assert_eq!(s.len(), 2, "only the fadds survive");
        assert_eq!(stats.address_removed, stats.nodes_before - 2);
    }

    #[test]
    fn keeps_integer_data_computation() {
        // md5-style: out[i] = (in[i] ^ 21) + 7 — integer ops stored as data.
        let mut pb = ProgramBuilder::new("intdata");
        let inp = pb.global("in", Type::I64, 4);
        let out = pb.global("out", Type::I64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let x = f.bin(BinOp::Xor, ld, Expr::Int(21));
            let v = f.bin(BinOp::Add, x, Expr::Int(7));
            vec![FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let (s, stats) = simplify_run(&p, &RunConfig::default().with_i64("in", &[1, 2, 3, 4]));
        assert_eq!(stats.address_removed, 0, "data-producing int ops are kept");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn removes_branch_condition_computation() {
        // if (in[i] > 0.5) out[i] = in[i] + 1.0 — the fcmp disappears, the
        // conditional body computation stays.
        let mut pb = ProgramBuilder::new("cond");
        let inp = pb.global("in", Type::F64, 4);
        let out = pb.global("out", Type::F64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let ld = f.load(inp, Expr::Var(i));
            let cond = f.bin(BinOp::FGt, ld.clone(), Expr::Float(0.5));
            let v = f.bin(BinOp::FAdd, ld, Expr::Float(1.0));
            vec![repro_ir::Stmt::If {
                cond,
                then_body: vec![FnBuilder::stmt_store(out, Expr::Var(i), v)],
                else_body: vec![],
                loc: repro_ir::Loc::NONE,
            }]
        });
        f.push(repro_ir::Stmt::Output {
            arr: out,
            loc: repro_ir::Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let (s, _) = simplify_run(
            &p,
            &RunConfig::default().with_f64("in", &[0.1, 0.9, 0.2, 0.8]),
        );
        // 4 fcmps removed; fadds: evaluated in all 4 iterations (the value
        // is computed before the branch in this IR shape), all kept.
        let labels: Vec<&str> = s.node_ids().map(|n| s.label_str(s.node(n).label)).collect();
        assert!(labels.iter().all(|&l| l == "fadd"));
    }

    #[test]
    fn stats_reduction_factor() {
        let s = SimplifyStats {
            nodes_before: 382,
            nodes_after: 100,
            iterator_removed: 100,
            address_removed: 182,
        };
        assert!((s.reduction() - 3.82).abs() < 1e-9);
    }
}
