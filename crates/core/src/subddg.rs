//! Sub-DDGs: the unit of work of the iterative finder.
//!
//! A sub-DDG is a subset of the simplified DDG's nodes, optionally
//! *grouped* (the compaction structure: one group per loop iteration), and
//! tagged with its provenance — which decides the pattern models it is
//! matched against and how it combines with others (paper §5).

use ddg::{BitSet, Ddg, NodeId};

/// Provenance of a sub-DDG.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SubKind {
    /// The dynamic scope of one static loop (compacted per iteration).
    /// Matched against map and reduction models.
    Loop { loop_id: u32 },
    /// A weakly connected component over one associative operation.
    /// Matched against reduction models.
    Assoc { label: String },
    /// Subtraction result; inherits the matching behavior of its base.
    /// `from_loop` keeps the loop id when the base was loop-shaped.
    Derived { from_loop: Option<u32> },
    /// Fusion of a matched map with another matched sub-DDG: the map part,
    /// the other part, and what the other part matched — which decides
    /// whether the fused-map or a map-reduction model applies.
    Fused {
        map_part: BitSet,
        other_part: BitSet,
        other_kind: crate::patterns::PatternKind,
    },
}

/// A sub-DDG in the pool.
#[derive(Clone, Debug)]
pub struct SubDdg {
    /// Nodes, as indices into the *simplified* DDG.
    pub nodes: BitSet,
    /// Compaction groups (disjoint, covering `nodes`) — `None` for
    /// ungrouped (associative-component) sub-DDGs.
    pub groups: Option<Vec<Vec<NodeId>>>,
    pub kind: SubKind,
}

impl SubDdg {
    /// An ungrouped sub-DDG.
    pub fn ungrouped(nodes: BitSet, kind: SubKind) -> Self {
        SubDdg {
            nodes,
            groups: None,
            kind,
        }
    }

    /// A grouped (compacted) sub-DDG; `groups` must partition `nodes`.
    pub fn grouped(nodes: BitSet, groups: Vec<Vec<NodeId>>, kind: SubKind) -> Self {
        debug_assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), nodes.len());
        SubDdg {
            nodes,
            groups: Some(groups),
            kind,
        }
    }

    /// Pool identity: node set plus a structural-kind tag. A loop sub-DDG,
    /// an associative sub-DDG, and a fusion over the same nodes are
    /// distinct pool entries — they are matched against different models
    /// (in a sequential map-reduction, the fused map∪reduction covers
    /// exactly the original loop's nodes, yet is a new sub-DDG).
    pub fn pool_key(&self) -> (Vec<u64>, u8) {
        let words: Vec<u64> = {
            let mut w = vec![0u64; self.nodes.capacity().div_ceil(64)];
            for i in self.nodes.iter() {
                w[i / 64] |= 1 << (i % 64);
            }
            w
        };
        let tag = match &self.kind {
            SubKind::Loop { .. } => 0,
            SubKind::Assoc { .. } => 1,
            SubKind::Derived { from_loop: Some(_) } => 2,
            SubKind::Derived { from_loop: None } => 3,
            SubKind::Fused { other_kind, .. } if other_kind.is_map() => 4,
            SubKind::Fused { .. } => 5,
        };
        (words, tag)
    }

    /// Subtraction: `self − other`, with grouping filtered (paper "DDG
    /// Subtraction"). Returns `None` when nothing (or everything) remains.
    pub fn subtract(&self, other: &BitSet) -> Option<SubDdg> {
        if !self.nodes.intersects(other) {
            return None;
        }
        let nodes = self.nodes.difference(other);
        if nodes.is_empty() {
            return None;
        }
        let groups = self.groups.as_ref().map(|gs| {
            gs.iter()
                .map(|g| {
                    g.iter()
                        .copied()
                        .filter(|n| nodes.contains(n.index()))
                        .collect::<Vec<_>>()
                })
                .filter(|g| !g.is_empty())
                .collect::<Vec<_>>()
        });
        let from_loop = match &self.kind {
            SubKind::Loop { loop_id } => Some(*loop_id),
            SubKind::Derived { from_loop } => *from_loop,
            _ => None,
        };
        Some(SubDdg {
            nodes,
            groups,
            kind: SubKind::Derived { from_loop },
        })
    }

    /// True when every arc leaving `self` lands in `other` and at least
    /// one such arc exists — the paper's *adjacency* precondition for
    /// fusion ("all arcs from one flow into the other").
    pub fn flows_into(&self, other: &SubDdg, g: &Ddg) -> bool {
        let mut any = false;
        for u in self.nodes.iter() {
            for &v in g.succs(NodeId(u as u32)) {
                if self.nodes.contains(v.index()) {
                    continue;
                }
                if !other.nodes.contains(v.index()) {
                    return false;
                }
                any = true;
            }
        }
        any
    }

    /// Fusion: node-set union, concatenating groupings (ungrouped nodes
    /// become singleton groups). The caller provides the result kind.
    pub fn fuse(&self, other: &SubDdg, kind: SubKind) -> SubDdg {
        let nodes = self.nodes.union(&other.nodes);
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut seen = BitSet::new(nodes.capacity());
        for part in [self, other] {
            match &part.groups {
                Some(gs) => {
                    for gr in gs {
                        let fresh: Vec<NodeId> = gr
                            .iter()
                            .copied()
                            .filter(|n| seen.insert(n.index()))
                            .collect();
                        if !fresh.is_empty() {
                            groups.push(fresh);
                        }
                    }
                }
                None => {
                    for n in part.nodes.iter() {
                        if seen.insert(n) {
                            groups.push(vec![NodeId(n as u32)]);
                        }
                    }
                }
            }
        }
        SubDdg {
            nodes,
            groups: Some(groups),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddg::DdgBuilder;

    fn four_node_graph() -> Ddg {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[2]);
        b.add_arc(n[1], n[2]);
        b.add_arc(n[2], n[3]);
        b.finish()
    }

    #[test]
    fn subtract_filters_groups() {
        let g = four_node_graph();
        let s = SubDdg::grouped(
            BitSet::from_iter(g.len(), [0, 1, 2]),
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]],
            SubKind::Loop { loop_id: 7 },
        );
        let taken = BitSet::from_iter(g.len(), [1, 2]);
        let d = s.subtract(&taken).unwrap();
        assert_eq!(d.nodes.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(d.groups.as_ref().unwrap().len(), 1);
        assert_eq!(d.kind, SubKind::Derived { from_loop: Some(7) });
        // Complete removal yields None.
        assert!(s.subtract(&BitSet::from_iter(g.len(), [0, 1, 2])).is_none());
        // Disjoint subtraction yields None (no new sub-DDG).
        assert!(s.subtract(&BitSet::from_iter(g.len(), [3])).is_none());
    }

    #[test]
    fn adjacency_requires_all_arcs_into_target() {
        let g = four_node_graph();
        let src = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [0, 1]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let dst_all = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [2, 3]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let dst_partial = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [3]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        assert!(src.flows_into(&dst_all, &g));
        assert!(
            !src.flows_into(&dst_partial, &g),
            "arc 0->2 escapes the target"
        );
        assert!(!dst_all.flows_into(&src, &g), "no arcs flow back");
    }

    #[test]
    fn fusion_unions_and_groups() {
        let g = four_node_graph();
        let a = SubDdg::grouped(
            BitSet::from_iter(g.len(), [0, 1]),
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            SubKind::Loop { loop_id: 0 },
        );
        let b = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), [2, 3]),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let fused = a.fuse(
            &b,
            SubKind::Fused {
                map_part: a.nodes.clone(),
                other_part: b.nodes.clone(),
                other_kind: crate::patterns::PatternKind::LinearReduction,
            },
        );
        assert_eq!(fused.nodes.len(), 4);
        assert_eq!(fused.groups.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn pool_keys_distinguish_grouping() {
        let g = four_node_graph();
        let nodes = BitSet::from_iter(g.len(), [0, 1]);
        let a = SubDdg::ungrouped(
            nodes.clone(),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let b = SubDdg::grouped(
            nodes,
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            SubKind::Loop { loop_id: 0 },
        );
        assert_ne!(a.pool_key(), b.pool_key());
    }
}
