//! Linear and tiled map-reduction models (paper §4.4).
//!
//! A map-reduction fuses a matched map with a matched reduction under a
//! consistency interface: each map component produces an output data
//! element that is *only* taken as input by its corresponding reduction
//! component (partial component, for the tiled form). The matcher
//! re-derives the reduction structure on the reduction part, then checks
//! that the map components and the (partial) reduction components are in
//! arc-bijection.

use crate::models::{MatchBudget, MatchOutcome};
use crate::patterns::{Detail, Pattern, PatternKind};
use crate::quotient::Quotient;
use crate::subddg::{SubDdg, SubKind};
use ddg::{BitSet, Ddg, NodeId};
use std::collections::HashMap;

/// Matches a linear or tiled map-reduction over a fused sub-DDG,
/// propagating budget exhaustion from the embedded tiled-reduction
/// search.
pub fn match_map_reduction(
    g: &Ddg,
    sub: &SubDdg,
    _q: &Quotient,
    map_part: &BitSet,
    other_part: &BitSet,
    budget: &MatchBudget,
) -> MatchOutcome {
    match match_map_reduction_inner(g, sub, map_part, other_part, budget) {
        Ok(pattern) => MatchOutcome::definitive(pattern),
        Err(Exhausted) => MatchOutcome::exhausted(),
    }
}

/// Marker error: the embedded reduction search ran out of budget.
struct Exhausted;

fn match_map_reduction_inner(
    g: &Ddg,
    sub: &SubDdg,
    map_part: &BitSet,
    other_part: &BitSet,
    budget: &MatchBudget,
) -> Result<Option<Pattern>, Exhausted> {
    // Re-derive the reduction structure on the reduction part.
    let Some(first) = other_part.first() else {
        return Ok(None);
    };
    let label = g.label_str(g.node(NodeId(first as u32)).label).to_string();
    let red_sub = SubDdg::ungrouped(other_part.clone(), SubKind::Assoc { label });
    let red_q = Quotient::build(g, &red_sub);
    let (red_kind, red_detail) =
        if let Some(p) = super::reduction::match_linear(g, &red_sub, &red_q) {
            (PatternKind::LinearMapReduction, p.detail)
        } else {
            let tiled = super::reduction::match_tiled(g, &red_sub, &red_q, budget);
            match tiled.pattern {
                Some(p) => (PatternKind::TiledMapReduction, p.detail),
                None if tiled.exhausted => return Err(Exhausted),
                None => return Ok(None),
            }
        };

    // The reduction components that must each consume one map component's
    // output: all chain elements (linear), or all partial elements (tiled).
    let consumers: Vec<NodeId> = match &red_detail {
        Detail::Linear { chain } => chain.clone(),
        Detail::Tiled { partials, .. } => partials.iter().flatten().copied().collect(),
        _ => unreachable!("reduction match carries reduction detail"),
    };
    let consumer_set: HashMap<NodeId, usize> =
        consumers.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Map components: the fused grouping restricted to the map part.
    let Some(groups) = sub.groups.as_ref() else {
        return Ok(None);
    };
    let map_components: Vec<Vec<NodeId>> = groups
        .iter()
        .filter(|c| c.iter().all(|n| map_part.contains(n.index())))
        .cloned()
        .collect();
    if map_components.len() < 2 {
        return Ok(None);
    }

    // Interface: each map component's external outputs all land in exactly
    // one consumer; distinct components use distinct consumers; every
    // consumer is used (bijection).
    let mut used: Vec<bool> = vec![false; consumers.len()];
    for comp in &map_components {
        let members: BitSet =
            BitSet::from_iter(sub.nodes.capacity(), comp.iter().map(|n| n.index()));
        let mut target: Option<usize> = None;
        for &m in comp {
            for &s in g.succs(m) {
                if members.contains(s.index()) {
                    continue;
                }
                let Some(&ci) = consumer_set.get(&s) else {
                    return Ok(None); // output leaks outside the reduction
                };
                if target.replace(ci).is_some_and(|prev| prev != ci) {
                    return Ok(None); // feeds two reduction components
                }
            }
        }
        let Some(t) = target else {
            return Ok(None);
        };
        if std::mem::replace(&mut used[t], true) {
            return Ok(None); // two map components feed the same consumer
        }
    }
    if !used.iter().all(|&u| u) {
        return Ok(None);
    }

    let components = map_components.len()
        + consumers.len()
        + match &red_detail {
            Detail::Tiled { final_chain, .. } => final_chain.len(),
            _ => 0,
        };
    Ok(Some(
        Pattern::with_metadata(red_kind, sub.nodes.clone(), components, g).with_detail(red_detail),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::reduction::tests::tiled_graph_with_map;

    #[test]
    fn streamcluster_shape_matches_tiled_map_reduction() {
        let (g, sub) = tiled_graph_with_map(2);
        let q = Quotient::build(&g, &sub);
        let SubKind::Fused {
            map_part,
            other_part,
            ..
        } = &sub.kind
        else {
            panic!()
        };
        let out = match_map_reduction(&g, &sub, &q, map_part, other_part, &MatchBudget::default());
        assert!(!out.exhausted);
        let p = out.pattern.expect("tiled map-reduction");
        assert_eq!(p.kind, PatternKind::TiledMapReduction);
        assert_eq!(
            p.op_labels,
            vec!["call.sqrt".to_string(), "fadd".to_string()]
        );
    }

    #[test]
    fn leaked_output_breaks_the_interface() {
        let (g, sub) = tiled_graph_with_map(2);
        // Attach one map node's output to a node outside the reduction:
        // rebuild with an extra consumer.
        let q = Quotient::build(&g, &sub);
        let SubKind::Fused {
            map_part,
            other_part,
            ..
        } = &sub.kind
        else {
            panic!()
        };
        // Shrink other_part so one map output leaks.
        let mut small = other_part.clone();
        let last = small.iter().last().unwrap();
        small.remove(last);
        let out = match_map_reduction(&g, &sub, &q, map_part, &small, &MatchBudget::default());
        assert!(out.pattern.is_none());
        assert!(!out.exhausted);
    }

    #[test]
    fn exhausted_reduction_search_propagates_through_the_fusion() {
        let (g, sub) = tiled_graph_with_map(2);
        let q = Quotient::build(&g, &sub);
        let SubKind::Fused {
            map_part,
            other_part,
            ..
        } = &sub.kind
        else {
            panic!()
        };
        let budget = MatchBudget {
            time: std::time::Duration::ZERO,
            deadline: None,
        };
        let out = match_map_reduction(&g, &sub, &q, map_part, other_part, &budget);
        assert!(out.pattern.is_none());
        assert!(out.exhausted);
    }
}
