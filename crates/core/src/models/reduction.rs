//! Linear- and tiled-reduction models (paper §4.3).
//!
//! Components are single nodes of one known-associative operation — the
//! paper's under-approximation of the associativity constraint (3b).
//! A linear reduction is a full chain over the sub-DDG: consecutive
//! components joined by direct dataflow (3c/3d), every component fed from
//! outside (3e), the last one producing output (3f).
//!
//! A tiled reduction additionally partitions the component set into m
//! partial chains and one final chain of m components, with each partial's
//! tail feeding a distinct final component (4d/4e). Choosing the final
//! chain is genuinely combinatorial (a partial tail and a final-chain
//! predecessor look alike locally), so the matcher runs a bounded
//! backtracking search over final-chain extensions under the same time
//! budget as the paper's solver runs.

use crate::models::{MatchBudget, MatchOutcome};
use crate::patterns::{Detail, Pattern, PatternKind};
use crate::quotient::Quotient;
use crate::subddg::SubDdg;
use ddg::{Ddg, NodeId};
use std::time::Instant;

/// Matches a linear reduction covering the whole sub-DDG.
pub fn match_linear(g: &Ddg, sub: &SubDdg, q: &Quotient) -> Option<Pattern> {
    let n = q.len();
    if n < 2 {
        return None;
    }
    // Single-node associative components, all the same operation.
    let label = singleton_assoc_label(g, q)?;

    // The chain: unique source, unique internal successor at each step.
    let mut indeg = vec![0usize; n];
    for &(_, b) in &q.arcs {
        indeg[b] += 1;
    }
    if q.arcs.len() != n - 1 {
        return None;
    }
    let mut current = {
        let sources: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        if sources.len() != 1 {
            return None;
        }
        sources[0]
    };
    let mut order = Vec::with_capacity(n);
    loop {
        order.push(current);
        match q.succs[current].as_slice() {
            [] => break,
            [next] => current = *next,
            _ => return None, // branching dataflow is not a chain
        }
    }
    if order.len() != n {
        return None;
    }
    // (3e) every component takes an input element; (3f) the last one
    // produces output.
    if !order.iter().all(|&i| q.groups[i].ext_in) {
        return None;
    }
    if !q.groups[*order.last().unwrap()].ext_out {
        return None;
    }
    let chain: Vec<NodeId> = order.iter().map(|&i| q.groups[i].members[0]).collect();
    let _ = label;
    if !same_static_op(g, chain.iter().copied()) {
        return None;
    }
    if !crate::models::verify::is_convex(g, &sub.nodes) {
        return None; // (1e)
    }
    Some(
        Pattern::with_metadata(PatternKind::LinearReduction, sub.nodes.clone(), n, g)
            .with_detail(Detail::Linear { chain }),
    )
}

/// Matches a tiled reduction covering the whole sub-DDG. The search is
/// deterministic, so a truncated run can only *miss* a match, never
/// invent one: a returned pattern implies no budget pruning ever fired,
/// and is byte-identical to an unconstrained run. A `None` reached after
/// the cutoff is therefore reported as exhausted, not definitive.
pub fn match_tiled(g: &Ddg, sub: &SubDdg, q: &Quotient, budget: &MatchBudget) -> MatchOutcome {
    let n = q.len();
    // Minimum: two partials of one component plus a final chain of two.
    if n < 4 {
        return MatchOutcome::definitive(None);
    }
    if singleton_assoc_label(g, q).is_none() {
        return MatchOutcome::definitive(None);
    }

    // The final chain ends at the unique sink, which must emit output.
    let sinks: Vec<usize> = (0..n).filter(|&i| q.succs[i].is_empty()).collect();
    let [sink] = sinks.as_slice() else {
        return MatchOutcome::definitive(None);
    };
    if !q.groups[*sink].ext_out {
        return MatchOutcome::definitive(None);
    }

    // Bounded backtracking over final-chain extensions, newest-first.
    let deadline = budget.cutoff();
    let mut rf_rev = vec![*sink];
    if !crate::models::verify::is_convex(g, &sub.nodes) {
        return MatchOutcome::definitive(None); // (1e)
    }
    let mut hit_deadline = false;
    let pattern =
        search_final_chain(g, q, &mut rf_rev, &deadline, &mut hit_deadline).and_then(|rf| {
            let partials = validate_split(g, q, &rf)?;
            let final_chain: Vec<NodeId> = rf.iter().map(|&i| q.groups[i].members[0]).collect();
            let partial_chains: Vec<Vec<NodeId>> = partials
                .iter()
                .map(|p| p.iter().map(|&i| q.groups[i].members[0]).collect())
                .collect();
            let comps = n;
            Some(
                Pattern::with_metadata(PatternKind::TiledReduction, sub.nodes.clone(), comps, g)
                    .with_detail(Detail::Tiled {
                        partials: partial_chains,
                        final_chain,
                    }),
            )
        });
    match pattern {
        Some(p) => MatchOutcome::definitive(Some(p)),
        None if hit_deadline => MatchOutcome::exhausted(),
        None => MatchOutcome::definitive(None),
    }
}

/// Every node of a candidate chain executes the *same static operation*:
/// a reduction repeats one operator over the data elements, whereas a
/// coincidental multiply-into-multiply chain across program phases comes
/// from distinct operations and must not match (the paper's reduction
/// operators are "formed by a single operation").
fn same_static_op(g: &Ddg, nodes: impl IntoIterator<Item = NodeId>) -> bool {
    let mut iter = nodes.into_iter();
    let Some(first) = iter.next() else {
        return true;
    };
    let op = g.node(first).static_op;
    iter.all(|n| g.node(n).static_op == op)
}

/// All quotient groups are single nodes of one associative label; returns
/// that label.
fn singleton_assoc_label(g: &Ddg, q: &Quotient) -> Option<u32> {
    let first = q.groups.first()?;
    if first.label_key.len() != 1 {
        return None;
    }
    let label = first.label_key[0];
    if !g.label_is_associative(ddg::LabelId(label)) {
        return None;
    }
    for gr in &q.groups {
        if gr.label_key.as_slice() != [label] {
            return None;
        }
    }
    Some(label)
}

/// Extends the reversed final chain (`rf_rev[0]` is the sink) backwards.
/// At each step, any internal predecessor of the chain head may continue
/// the chain; the first extension whose remaining nodes split into valid
/// partial chains wins. Returns the final chain in forward order.
fn search_final_chain(
    g: &Ddg,
    q: &Quotient,
    rf_rev: &mut Vec<usize>,
    deadline: &Instant,
    hit_deadline: &mut bool,
) -> Option<Vec<usize>> {
    if Instant::now() >= *deadline {
        *hit_deadline = true;
        return None;
    }
    let head = *rf_rev.last().unwrap();
    // Option A: stop here (head is RF_1) — valid when the split checks out.
    if rf_rev.len() >= 2 {
        let rf: Vec<usize> = rf_rev.iter().rev().copied().collect();
        if validate_split(g, q, &rf).is_some() {
            return Some(rf);
        }
    }
    // Option B: extend through one of the head's predecessors.
    for pi in 0..q.preds[head].len() {
        let p = q.preds[head][pi];
        if rf_rev.contains(&p) {
            continue;
        }
        rf_rev.push(p);
        if let Some(found) = search_final_chain(g, q, rf_rev, deadline, hit_deadline) {
            return Some(found);
        }
        rf_rev.pop();
    }
    None
}

/// Checks that removing the final chain leaves exactly m simple partial
/// chains whose tails feed the m final components bijectively (4d/4e),
/// each partial component taking external input (3e). Returns the partial
/// chains, ordered by the final component they feed.
fn validate_split(g: &Ddg, q: &Quotient, rf: &[usize]) -> Option<Vec<Vec<usize>>> {
    let n = q.len();
    // One static operation per final chain (see `same_static_op`).
    if !same_static_op(g, rf.iter().map(|&i| q.groups[i].members[0])) {
        return None;
    }
    let m = rf.len();
    let mut in_rf = vec![false; n];
    for &r in rf {
        in_rf[r] = true;
    }
    // The final chain must be chain-connected with no skips, and each RF
    // component's predecessors must be: the chain predecessor plus exactly
    // one partial tail.
    for (k, &r) in rf.iter().enumerate() {
        let chain_pred = if k > 0 { Some(rf[k - 1]) } else { None };
        let mut partial_preds = 0;
        for &p in &q.preds[r] {
            if Some(p) == chain_pred {
                continue;
            }
            if in_rf[p] {
                return None; // skip arc within the final chain
            }
            partial_preds += 1;
        }
        if partial_preds != 1 {
            return None;
        }
        if let Some(cp) = chain_pred {
            if !q.succs[cp].contains(&r) {
                return None;
            }
        }
    }

    // Partition the rest into simple chains.
    let remaining: Vec<usize> = (0..n).filter(|&i| !in_rf[i]).collect();
    if remaining.is_empty() {
        return None;
    }
    let mut internal_succ: Vec<Option<usize>> = vec![None; n];
    let mut internal_pred: Vec<Option<usize>> = vec![None; n];
    let mut rf_target: Vec<Option<usize>> = vec![None; n];
    for &u in &remaining {
        for &v in &q.succs[u] {
            if in_rf[v] {
                if rf_target[u].replace(v).is_some() {
                    return None; // two arcs into the final chain (4e)
                }
            } else {
                if internal_succ[u].replace(v).is_some() {
                    return None; // branching partial
                }
                if internal_pred[v].replace(u).is_some() {
                    return None; // joining partial
                }
            }
        }
    }
    // Walk each partial chain from its head.
    let mut partial_of_rf: Vec<Option<Vec<usize>>> = vec![None; m];
    let rf_index: std::collections::HashMap<usize, usize> =
        rf.iter().enumerate().map(|(k, &r)| (r, k)).collect();
    let mut seen = 0usize;
    for &u in &remaining {
        if internal_pred[u].is_some() {
            continue; // not a head
        }
        let mut chain = Vec::new();
        let mut cur = u;
        loop {
            chain.push(cur);
            seen += 1;
            // Every component of a partial reduction takes external input.
            if !q.groups[cur].ext_in {
                return None;
            }
            match internal_succ[cur] {
                Some(next) => {
                    // Only the tail may feed the final chain.
                    if rf_target[cur].is_some() {
                        return None;
                    }
                    cur = next;
                }
                None => break,
            }
        }
        // The tail feeds exactly one final component, not yet taken.
        let target = rf_target[cur]?;
        let k = rf_index[&target];
        if partial_of_rf[k].replace(chain).is_some() {
            return None;
        }
    }
    if seen != remaining.len() {
        return None; // leftover nodes in cycles or unreached
    }
    // Bijection: every final component has its partial; each partial
    // repeats one static operation.
    partial_of_rf
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .filter(|ps| ps.len() >= 2)
        .filter(|ps| {
            ps.iter()
                .all(|p| same_static_op(g, p.iter().map(|&i| q.groups[i].members[0])))
        })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::subddg::SubKind;
    use ddg::{BitSet, DdgBuilder};

    /// `tiled_graph` extended with a map: one `call.sqrt` node feeding each
    /// partial add — the motivating example's dist() computations. Returns
    /// a fused sub-DDG (map part + reduction part).
    pub(crate) fn tiled_graph_with_map(per: usize) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let fadd = b.intern_label("fadd", true);
        let sqrt = b.intern_label("call.sqrt", false);
        let mut map_nodes = Vec::new();
        let mut red_nodes = Vec::new();
        let mut tails = Vec::new();
        for t in 0..2u16 {
            let mut prev: Option<NodeId> = None;
            for i in 0..per {
                let m = b.add_node(sqrt, 100 + i as u32, 0, 3, 1, t + 1, vec![]);
                b.mark_reads_input(m);
                let a = b.add_node(fadd, 0, 0, 4, 1, t + 1, vec![]);
                b.add_arc(m, a);
                if let Some(p) = prev {
                    b.add_arc(p, a);
                }
                prev = Some(a);
                map_nodes.push(m);
                red_nodes.push(a);
            }
            tails.push(prev.unwrap());
        }
        let f1 = b.add_node(fadd, 10, 0, 8, 1, 1, vec![]);
        let f2 = b.add_node(fadd, 10, 0, 8, 1, 1, vec![]);
        b.add_arc(tails[0], f1);
        b.add_arc(f1, f2);
        b.add_arc(tails[1], f2);
        b.mark_writes_output(f2);
        red_nodes.push(f1);
        red_nodes.push(f2);
        let g = b.finish();
        let map_part = BitSet::from_iter(g.len(), map_nodes.iter().map(|n| n.index()));
        let other_part = BitSet::from_iter(g.len(), red_nodes.iter().map(|n| n.index()));
        let groups: Vec<Vec<NodeId>> = map_nodes
            .iter()
            .chain(&red_nodes)
            .map(|&n| vec![n])
            .collect();
        let sub = SubDdg::grouped(
            map_part.union(&other_part),
            groups,
            SubKind::Fused {
                map_part,
                other_part,
                other_kind: crate::patterns::PatternKind::TiledReduction,
            },
        );
        (g, sub)
    }

    /// A chain of `n` fadds, each fed from outside, last writing output.
    fn chain_graph(n: usize) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(l, 0, 0, 1, 1, 0, vec![]))
            .collect();
        for i in 0..n {
            b.mark_reads_input(nodes[i]);
            if i > 0 {
                b.add_arc(nodes[i - 1], nodes[i]);
            }
        }
        b.mark_writes_output(nodes[n - 1]);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..n),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        (g, sub)
    }

    #[test]
    fn chain_matches_linear_reduction() {
        let (g, sub) = chain_graph(4);
        let q = Quotient::build(&g, &sub);
        let p = match_linear(&g, &sub, &q).expect("linear reduction");
        assert_eq!(p.kind, PatternKind::LinearReduction);
        assert_eq!(p.components, 4);
        let Detail::Linear { chain } = &p.detail else {
            panic!()
        };
        assert_eq!(chain.len(), 4);
        assert!(chain.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn non_associative_or_branching_is_rejected() {
        // Tree: two nodes feed one — not a chain.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let x = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        let y = b.add_node(l, 1, 0, 1, 1, 0, vec![]);
        let z = b.add_node(l, 2, 0, 1, 1, 0, vec![]);
        for n in [x, y, z] {
            b.mark_reads_input(n);
        }
        b.add_arc(x, z);
        b.add_arc(y, z);
        b.mark_writes_output(z);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(3, 0..3),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert!(match_linear(&g, &sub, &q).is_none());
    }

    #[test]
    fn missing_final_output_rejected() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let x = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        let y = b.add_node(l, 1, 0, 1, 1, 0, vec![]);
        b.mark_reads_input(x);
        b.mark_reads_input(y);
        b.add_arc(x, y);
        // no output mark on y
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(2, 0..2),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert!(match_linear(&g, &sub, &q).is_none());
    }

    /// The paper's Fig. 2c associative component: two partial chains of
    /// `per` adds (threads) feeding a final chain of two adds.
    pub(crate) fn tiled_graph(per: usize) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let mut all = Vec::new();
        let mut tails = Vec::new();
        for t in 0..2u16 {
            let chain: Vec<NodeId> = (0..per)
                .map(|_| b.add_node(l, 0, 0, 1, 1, t + 1, vec![]))
                .collect();
            for i in 0..per {
                b.mark_reads_input(chain[i]);
                if i > 0 {
                    b.add_arc(chain[i - 1], chain[i]);
                }
            }
            tails.push(chain[per - 1]);
            all.extend(chain);
        }
        let f1 = b.add_node(l, 10, 0, 2, 1, 1, vec![]);
        let f2 = b.add_node(l, 10, 0, 2, 1, 1, vec![]);
        b.add_arc(tails[0], f1);
        b.add_arc(f1, f2);
        b.add_arc(tails[1], f2);
        b.mark_writes_output(f2);
        all.push(f1);
        all.push(f2);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..g.len()),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        (g, sub)
    }

    #[test]
    fn streamcluster_shape_matches_tiled() {
        let (g, sub) = tiled_graph(2);
        let q = Quotient::build(&g, &sub);
        assert!(match_linear(&g, &sub, &q).is_none(), "a tree is not linear");
        let out = match_tiled(&g, &sub, &q, &MatchBudget::default());
        assert!(!out.exhausted);
        let p = out.pattern.expect("tiled reduction");
        assert_eq!(p.kind, PatternKind::TiledReduction);
        let Detail::Tiled {
            partials,
            final_chain,
        } = &p.detail
        else {
            panic!()
        };
        assert_eq!(partials.len(), 2);
        assert_eq!(final_chain.len(), 2);
        assert!(partials.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn partials_only_do_not_match_tiled() {
        // Two disjoint chains with no final: the `p` sub-DDG of Table 1.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        for _ in 0..2 {
            let x = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
            let y = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
            b.mark_reads_input(x);
            b.mark_reads_input(y);
            b.add_arc(x, y);
            b.mark_writes_output(y);
        }
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(4, 0..4),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let q = Quotient::build(&g, &sub);
        assert!(match_linear(&g, &sub, &q).is_none());
        let out = match_tiled(&g, &sub, &q, &MatchBudget::default());
        assert!(out.pattern.is_none());
        assert!(!out.exhausted, "a structural rejection is definitive");
    }

    #[test]
    fn larger_tiled_configurations_match() {
        let (g, sub) = tiled_graph(5);
        let q = Quotient::build(&g, &sub);
        let p = match_tiled(&g, &sub, &q, &MatchBudget::default())
            .pattern
            .expect("tiled");
        let Detail::Tiled { partials, .. } = &p.detail else {
            panic!()
        };
        assert!(partials.iter().all(|c| c.len() == 5));
    }

    #[test]
    fn zero_budget_reports_exhaustion_not_a_definitive_miss() {
        let (g, sub) = tiled_graph(3);
        let q = Quotient::build(&g, &sub);
        let budget = MatchBudget {
            time: std::time::Duration::ZERO,
            deadline: None,
        };
        let out = match_tiled(&g, &sub, &q, &budget);
        assert!(out.pattern.is_none());
        assert!(out.exhausted, "a cut-short search must not claim no-match");
    }

    #[test]
    fn expired_request_deadline_exhausts_the_search() {
        let (g, sub) = tiled_graph(3);
        let q = Quotient::build(&g, &sub);
        let budget = MatchBudget {
            time: std::time::Duration::from_secs(60),
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        let out = match_tiled(&g, &sub, &q, &budget);
        assert!(out.pattern.is_none());
        assert!(out.exhausted);
    }
}
