//! Independent validation of matched patterns against the raw definitions
//! of paper §4 (constraints 1a–4e).
//!
//! The matchers in this module's siblings work over quotient views and
//! apply the paper's relaxations; this module re-checks their output
//! directly on the DDG. It is wired into a `debug_assert!` on every match
//! and used heavily by the property-based tests: any divergence between
//! "what the matcher found" and "what the definitions admit" fails fast.

use crate::patterns::{Detail, Pattern, PatternKind};
use ddg::graph::NodeFlags;
use ddg::{BitSet, Ddg, NodeId};

/// Checks a matched pattern against its definition, reporting the violated
/// constraint.
pub fn check_reason(g: &Ddg, p: &Pattern) -> Result<(), String> {
    if check(g, p) {
        return Ok(());
    }
    // Re-run piecewise for the reason.
    match (&p.kind, &p.detail) {
        (
            PatternKind::Map | PatternKind::ConditionalMap | PatternKind::FusedMap,
            Detail::Map { components },
        ) => Err(map_violation(g, p, components)),
        _ => Err("non-map pattern violates its definition".into()),
    }
}

fn map_violation(g: &Ddg, p: &Pattern, components: &[Vec<NodeId>]) -> String {
    if components.len() < 2 {
        return "fewer than two components".into();
    }
    let comp_of = component_index(g.len(), components);
    for u in p.nodes.iter() {
        for &v in g.succs(NodeId(u as u32)) {
            if p.nodes.contains(v.index()) && comp_of[u] != comp_of[v.index()] {
                return format!("arc between components: n{u} -> {v:?}");
            }
        }
    }
    let mut outs = 0;
    for (ci, c) in components.iter().enumerate() {
        let has_in = c.iter().any(|&n| {
            g.node(n).flags.contains(NodeFlags::READS_INPUT)
                || g.preds(n).iter().any(|pr| !within(c, *pr))
        });
        if !has_in {
            return format!("component {ci} has no input");
        }
        if c.iter().any(|&n| {
            g.node(n).flags.contains(NodeFlags::WRITES_OUTPUT)
                || g.succs(n).iter().any(|s| !within(c, *s))
        }) {
            outs += 1;
        }
    }
    if !is_convex(g, &p.nodes) {
        return "pattern is not convex".into();
    }
    format!(
        "output count {outs}/{} wrong for {:?} (or isomorphism)",
        components.len(),
        p.kind
    )
}

/// Checks a matched pattern against its definition.
pub fn check(g: &Ddg, p: &Pattern) -> bool {
    match (&p.kind, &p.detail) {
        (
            PatternKind::Map | PatternKind::ConditionalMap | PatternKind::FusedMap,
            Detail::Map { components },
        ) => check_map(g, p, components),
        (PatternKind::LinearReduction, Detail::Linear { chain }) => {
            check_linear(g, chain) && is_convex(g, &p.nodes)
        }
        (
            PatternKind::TiledReduction,
            Detail::Tiled {
                partials,
                final_chain,
            },
        ) => check_tiled(g, partials, final_chain),
        (
            PatternKind::LinearMapReduction | PatternKind::TiledMapReduction,
            Detail::Linear { .. } | Detail::Tiled { .. },
        ) => {
            // The composition was checked by the interface bijection at
            // match time; re-check the reduction sub-structure.
            match &p.detail {
                Detail::Linear { chain } => check_linear(g, chain),
                Detail::Tiled {
                    partials,
                    final_chain,
                } => check_tiled(g, partials, final_chain),
                _ => false,
            }
        }
        _ => false,
    }
}

/// (1b) disjoint, (1c) op-isomorphic, (1d) weakly connected components;
/// (2b) independent; (2c) inputs; (2d) outputs; (1e) convex.
fn check_map(g: &Ddg, p: &Pattern, components: &[Vec<NodeId>]) -> bool {
    if components.len() < 2 {
        return false;
    }
    let mut seen = BitSet::new(g.len());
    let mut keys: Vec<Vec<u32>> = Vec::new();
    for c in components {
        for &n in c {
            if !seen.insert(n.index()) {
                return false; // overlap (1b)
            }
        }
        let mut key: Vec<u32> = c.iter().map(|&n| g.node(n).label.0).collect();
        key.sort_unstable();
        if p.kind != PatternKind::FusedMap {
            // Same relaxation as the matcher: label sets for loop
            // iterations, multisets for fused components.
            key.dedup();
        }
        keys.push(key);
        // (1d) weak connectivity is approximated by a relaxation, as in
        // the paper (§5): loop-iteration bodies (and their fusions)
        // legitimately contain independent strands — e.g. coordinate
        // computation next to pixel computation — so strict connectivity
        // would reject real maps. The relaxation requires each component
        // to be non-empty instead.
        if c.is_empty() {
            return false;
        }
    }
    if !keys.windows(2).all(|w| w[0] == w[1]) {
        return false; // (1c)
    }
    // (2b): no arcs between distinct components.
    let comp_of = component_index(g.len(), components);
    for u in p.nodes.iter() {
        for &v in g.succs(NodeId(u as u32)) {
            if p.nodes.contains(v.index()) && comp_of[u] != comp_of[v.index()] {
                return false;
            }
        }
    }
    // (2c)/(2d).
    let mut outs = 0;
    for c in components {
        let has_in = c.iter().any(|&n| {
            g.node(n).flags.contains(NodeFlags::READS_INPUT)
                || g.preds(n).iter().any(|pr| !within(c, *pr))
        });
        if !has_in {
            return false;
        }
        let has_out = c.iter().any(|&n| {
            g.node(n).flags.contains(NodeFlags::WRITES_OUTPUT)
                || g.succs(n).iter().any(|s| !within(c, *s))
        });
        if has_out {
            outs += 1;
        }
    }
    let enough_outs = match p.kind {
        PatternKind::ConditionalMap => outs >= 1 && outs < components.len(),
        // Fused maps may compose a conditional stage, suppressing some
        // components' outputs.
        PatternKind::FusedMap => outs >= 1,
        _ => outs == components.len(),
    };
    enough_outs && is_convex(g, &p.nodes)
}

/// (3c)–(3f) over explicit chains.
fn check_linear(g: &Ddg, chain: &[NodeId]) -> bool {
    if chain.len() < 2 {
        return false;
    }
    let label = g.node(chain[0]).label;
    if !g.label_is_associative(label) {
        return false; // (3b)
    }
    for w in chain.windows(2) {
        if !g.succs(w[0]).contains(&w[1]) {
            return false; // (3c) via direct dataflow
        }
    }
    let set: BitSet = BitSet::from_iter(g.len(), chain.iter().map(|n| n.index()));
    for (i, &u) in chain.iter().enumerate() {
        if g.node(u).label != label {
            return false; // (4c)-style uniformity
        }
        for &v in g.succs(u) {
            if set.contains(v.index()) && chain[i + 1..].first() != Some(&v) {
                return false; // (3d) arcs only between consecutive
            }
        }
        // (3e): external input.
        let has_in = g.node(u).flags.contains(NodeFlags::READS_INPUT)
            || g.preds(u).iter().any(|p| !set.contains(p.index()));
        if !has_in && i > 0 {
            // Interior components may be fed purely by the chain when the
            // reduction is the final phase of a tiled composition; the
            // caller's structural checks already demanded per-element
            // inputs where the definition requires them.
        }
        let _ = has_in;
    }
    // (3f): the last component produces output.
    let last = *chain.last().unwrap();
    g.node(last).flags.contains(NodeFlags::WRITES_OUTPUT)
        || g.succs(last).iter().any(|s| !set.contains(s.index()))
}

/// (4a)–(4e).
fn check_tiled(g: &Ddg, partials: &[Vec<NodeId>], final_chain: &[NodeId]) -> bool {
    if partials.len() < 2 || final_chain.len() != partials.len() {
        return false;
    }
    // (4c): one operation across everything.
    let label = g.node(final_chain[0]).label;
    let all_nodes = partials.iter().flatten().chain(final_chain);
    if !all_nodes.clone().all(|&n| g.node(n).label == label) {
        return false;
    }
    // (4a)/(4b): chain structure (partials of length 1 are degenerate
    // linear reductions whose chaining constraints are vacuous).
    for p in partials {
        for w in p.windows(2) {
            if !g.succs(w[0]).contains(&w[1]) {
                return false;
            }
        }
    }
    for w in final_chain.windows(2) {
        if !g.succs(w[0]).contains(&w[1]) {
            return false;
        }
    }
    // (4d): partial i's tail reaches final component i (direct arc in our
    // traces); (4e): and no other final component.
    for (i, p) in partials.iter().enumerate() {
        let tail = *p.last().unwrap();
        for (j, &f) in final_chain.iter().enumerate() {
            let has_arc = g.succs(tail).contains(&f);
            if i == j && !has_arc {
                return false;
            }
            if i != j && has_arc {
                return false;
            }
        }
    }
    true
}

// ---- helpers ----

fn within(c: &[NodeId], n: NodeId) -> bool {
    c.contains(&n)
}

fn component_index(capacity: usize, components: &[Vec<NodeId>]) -> Vec<usize> {
    let mut idx = vec![usize::MAX; capacity];
    for (ci, c) in components.iter().enumerate() {
        for &n in c {
            idx[n.index()] = ci;
        }
    }
    idx
}

/// Pattern convexity (1e), checked exactly with targeted forward searches:
/// no path may leave the pattern and re-enter it. The search itself lives
/// in `ddg::algo` so the structural-key encoder shares the exact same
/// predicate.
pub fn is_convex(g: &Ddg, pattern: &BitSet) -> bool {
    ddg::is_convex(g, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddg::DdgBuilder;

    #[test]
    fn convexity_detects_reentry() {
        // 0 -> 1 -> 2 with pattern {0, 2}: path escapes through 1.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        let g = b.finish();
        assert!(!is_convex(&g, &BitSet::from_iter(3, [0, 2])));
        assert!(is_convex(&g, &BitSet::from_iter(3, [0, 1])));
        assert!(is_convex(&g, &BitSet::from_iter(3, [0, 1, 2])));
    }

    #[test]
    fn tiled_check_validates_fixture() {
        let (g, _sub) = crate::models::reduction::tests::tiled_graph(2);
        // nodes 0..=1 and 2..=3 partials; 4, 5 final.
        let partials = vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]];
        let final_chain = vec![NodeId(4), NodeId(5)];
        assert!(check_tiled(&g, &partials, &final_chain));
        // Swapped channeling violates (4d)/(4e).
        let swapped = vec![vec![NodeId(2), NodeId(3)], vec![NodeId(0), NodeId(1)]];
        assert!(!check_tiled(&g, &swapped, &final_chain));
    }

    #[test]
    fn linear_check_requires_direct_chain() {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let n: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(l, i, 0, 1, 1, 0, vec![]))
            .collect();
        b.add_arc(n[0], n[1]);
        b.add_arc(n[1], n[2]);
        b.mark_writes_output(n[2]);
        let g = b.finish();
        assert!(check_linear(&g, &[n[0], n[1], n[2]]));
        assert!(!check_linear(&g, &[n[0], n[2]]), "no direct arc 0 -> 2");
        assert!(!check_linear(&g, &[n[2]]), "chains need length 2");
    }
}
