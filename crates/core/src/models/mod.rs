//! The pattern models of paper §4, executed over sub-DDG quotient views.
//!
//! Each model enforces the constraints of its definition with the paper's
//! stated relaxations: operation-label multisets approximate component
//! isomorphism (1c/4c); reduction components are single nodes of a known
//! associative operation (3b); convexity (1e) and independence (2b) are
//! checked through full-graph group reachability. The genuinely
//! combinatorial part — choosing the final chain of a tiled reduction —
//! runs as a bounded search with the same time-budget discipline as the
//! paper's 60-second solver runs, and every match is re-validated against
//! the raw definitions by [`crate::models::verify`].

pub mod map;
pub mod mapred;
pub mod reduction;
pub mod verify;

use crate::patterns::Pattern;
use crate::quotient::Quotient;
use crate::subddg::{SubDdg, SubKind};
use ddg::Ddg;
use std::time::Duration;

/// Matching budget per sub-DDG (the paper's per-solver-run limit).
#[derive(Clone, Copy, Debug)]
pub struct MatchBudget {
    pub time: Duration,
}

impl Default for MatchBudget {
    fn default() -> Self {
        MatchBudget {
            time: Duration::from_secs(60),
        }
    }
}

/// Matches one sub-DDG against the models its provenance allows
/// (paper §5: loop sub-DDGs target maps and single-loop reductions,
/// associative components target reductions, fusions target fused maps and
/// map-reductions). Returns the first — and in practice only — match.
pub fn match_subddg(g: &Ddg, sub: &SubDdg, budget: &MatchBudget) -> Option<Pattern> {
    let q = Quotient::build(g, sub);
    let matched = match &sub.kind {
        SubKind::Loop { .. } | SubKind::Derived { from_loop: Some(_) } => {
            map::match_map(g, sub, &q).or_else(|| reduction::match_linear(g, sub, &q))
        }
        SubKind::Assoc { .. } | SubKind::Derived { from_loop: None } => {
            reduction::match_linear(g, sub, &q)
                .or_else(|| reduction::match_tiled(g, sub, &q, budget))
        }
        SubKind::Fused {
            map_part,
            other_part,
            other_kind,
        } => {
            if other_kind.is_map() {
                map::match_fused(g, sub, &q)
            } else {
                mapred::match_map_reduction(g, sub, &q, map_part, other_part, budget)
            }
        }
    }?;
    // Defense in depth: every reported match must satisfy the raw
    // definitions.
    debug_assert!(
        verify::check(g, &matched),
        "matched pattern violates its definition: {} — {}",
        matched.describe(),
        verify::check_reason(g, &matched).unwrap_err()
    );
    Some(matched)
}

/// The models a kind of sub-DDG is matched against, for diagnostics.
pub fn models_for(kind: &SubKind) -> &'static str {
    match kind {
        SubKind::Loop { .. } => "map, conditional-map, linear-reduction",
        SubKind::Assoc { .. } => "linear-reduction, tiled-reduction",
        SubKind::Derived { from_loop: Some(_) } => "map, conditional-map, linear-reduction",
        SubKind::Derived { from_loop: None } => "linear-reduction, tiled-reduction",
        SubKind::Fused { other_kind, .. } if other_kind.is_map() => "fused-map",
        SubKind::Fused { .. } => "linear/tiled map-reduction",
    }
}
