//! The pattern models of paper §4, executed over sub-DDG quotient views.
//!
//! Each model enforces the constraints of its definition with the paper's
//! stated relaxations: operation-label multisets approximate component
//! isomorphism (1c/4c); reduction components are single nodes of a known
//! associative operation (3b); convexity (1e) and independence (2b) are
//! checked through full-graph group reachability. The genuinely
//! combinatorial part — choosing the final chain of a tiled reduction —
//! runs as a bounded search with the same time-budget discipline as the
//! paper's 60-second solver runs, and every match is re-validated against
//! the raw definitions by [`crate::models::verify`].

pub mod map;
pub mod mapred;
pub mod reduction;
pub mod verify;

use crate::patterns::Pattern;
use crate::quotient::Quotient;
use crate::subddg::{SubDdg, SubKind};
use ddg::Ddg;
use std::time::{Duration, Instant};

/// Matching budget per sub-DDG (the paper's per-solver-run limit), plus
/// an optional request-level deadline folded in by the finder: the
/// effective cutoff of a combinatorial search is the *earlier* of the
/// two, so one expiring request cannot hold a worker for a full
/// per-match budget.
#[derive(Clone, Copy, Debug)]
pub struct MatchBudget {
    pub time: Duration,
    /// Absolute cutoff (cooperative request cancellation). `None` means
    /// only the per-match `time` applies.
    pub deadline: Option<Instant>,
}

impl Default for MatchBudget {
    fn default() -> Self {
        MatchBudget {
            time: Duration::from_secs(60),
            deadline: None,
        }
    }
}

impl MatchBudget {
    /// The absolute cutoff for one match starting now.
    pub(crate) fn cutoff(&self) -> Instant {
        let per_match = Instant::now() + self.time;
        match self.deadline {
            Some(d) => d.min(per_match),
            None => per_match,
        }
    }

    /// True once the request-level deadline has passed (the per-match
    /// `time` is relative and cannot pre-expire).
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The result of matching one sub-DDG: the pattern (or absence), plus
/// whether the matcher ran out of budget before it could be definitive.
/// An `exhausted` outcome is *best-so-far*: the pattern may be absent
/// only because the search was cut short, so it must not be memoized and
/// it marks the enclosing analysis as degraded.
#[derive(Clone, Debug, Default)]
pub struct MatchOutcome {
    pub pattern: Option<Pattern>,
    pub exhausted: bool,
}

impl MatchOutcome {
    /// A definitive (fully explored) outcome.
    pub fn definitive(pattern: Option<Pattern>) -> MatchOutcome {
        MatchOutcome {
            pattern,
            exhausted: false,
        }
    }

    /// The no-answer, out-of-budget outcome.
    pub fn exhausted() -> MatchOutcome {
        MatchOutcome {
            pattern: None,
            exhausted: true,
        }
    }
}

/// Matches one sub-DDG against the models its provenance allows
/// (paper §5: loop sub-DDGs target maps and single-loop reductions,
/// associative components target reductions, fusions target fused maps and
/// map-reductions), reporting budget exhaustion. An already-expired
/// budget short-circuits without matching — the cooperative cancellation
/// point request deadlines rely on.
pub fn match_subddg_full(g: &Ddg, sub: &SubDdg, budget: &MatchBudget) -> MatchOutcome {
    let mut span = obs::span_args("finder.match_subddg", || {
        vec![
            ("nodes", obs::ArgValue::U64(sub.nodes.len() as u64)),
            ("models", obs::ArgValue::Static(models_for(&sub.kind))),
        ]
    });
    if budget.expired() {
        span.arg("result", obs::ArgValue::Static("expired"));
        return MatchOutcome::exhausted();
    }
    let q = Quotient::build(g, sub);
    let outcome = match &sub.kind {
        SubKind::Loop { .. } | SubKind::Derived { from_loop: Some(_) } => MatchOutcome::definitive(
            map::match_map(g, sub, &q).or_else(|| reduction::match_linear(g, sub, &q)),
        ),
        SubKind::Assoc { .. } | SubKind::Derived { from_loop: None } => {
            match reduction::match_linear(g, sub, &q) {
                Some(p) => MatchOutcome::definitive(Some(p)),
                None => reduction::match_tiled(g, sub, &q, budget),
            }
        }
        SubKind::Fused {
            map_part,
            other_part,
            other_kind,
        } => {
            if other_kind.is_map() {
                MatchOutcome::definitive(map::match_fused(g, sub, &q))
            } else {
                mapred::match_map_reduction(g, sub, &q, map_part, other_part, budget)
            }
        }
    };
    span.arg(
        "result",
        obs::ArgValue::Static(match (&outcome.pattern, outcome.exhausted) {
            (Some(p), _) => p.kind.short(),
            (None, true) => "exhausted",
            (None, false) => "no-match",
        }),
    );
    // Defense in depth: every reported match must satisfy the raw
    // definitions.
    #[cfg(debug_assertions)]
    if let Some(matched) = &outcome.pattern {
        debug_assert!(
            verify::check(g, matched),
            "matched pattern violates its definition: {} — {}",
            matched.describe(),
            verify::check_reason(g, matched).unwrap_err()
        );
    }
    outcome
}

/// [`match_subddg_full`] without the exhaustion marker. Returns the
/// first — and in practice only — match.
pub fn match_subddg(g: &Ddg, sub: &SubDdg, budget: &MatchBudget) -> Option<Pattern> {
    match_subddg_full(g, sub, budget).pattern
}

/// The models a kind of sub-DDG is matched against, for diagnostics.
pub fn models_for(kind: &SubKind) -> &'static str {
    match kind {
        SubKind::Loop { .. } => "map, conditional-map, linear-reduction",
        SubKind::Assoc { .. } => "linear-reduction, tiled-reduction",
        SubKind::Derived { from_loop: Some(_) } => "map, conditional-map, linear-reduction",
        SubKind::Derived { from_loop: None } => "linear-reduction, tiled-reduction",
        SubKind::Fused { other_kind, .. } if other_kind.is_map() => "fused-map",
        SubKind::Fused { .. } => "linear/tiled map-reduction",
    }
}
