//! Map, conditional-map, and fused-map models (paper §4.2).
//!
//! After compaction, each candidate component is one quotient group (one
//! loop iteration). The model requires (over the whole sub-DDG — patterns
//! cover their sub-DDG, which is what makes `mp` in the paper's running
//! example unmatched until subtraction strips the reduction out):
//!
//! * ≥ 2 components;
//! * relaxed isomorphism: equal operation-label multisets (1c);
//! * independence: no component reaches another, directly or through
//!   nodes outside the pattern (2b + convexity 1e);
//! * every component takes input (2c): an external in-arc or raw program
//!   input;
//! * components produce output (2d): all of them for a map, at least one
//!   for a conditional map (whose other components' output is suppressed
//!   by a condition).

use crate::patterns::{Detail, Pattern, PatternKind};
use crate::quotient::Quotient;
use crate::subddg::SubDdg;
use ddg::{BitSet, Ddg, NodeId};

/// Matches a (conditional) map over the compacted sub-DDG.
pub fn match_map(g: &Ddg, sub: &SubDdg, q: &Quotient) -> Option<Pattern> {
    check_map_on_groups(g, sub, q, None)
}

/// Matches a fused map: first coarsen the quotient by weak connectivity
/// (each fused component is a pipeline of iterations from the chained
/// loops), then apply the map model to the coarsened components. Loops
/// with mismatching iteration spaces produce non-isomorphic components and
/// fail here — the paper's two missed `ray-rot` fused maps.
pub fn match_fused(g: &Ddg, sub: &SubDdg, q: &Quotient) -> Option<Pattern> {
    let coarse = coarsen_by_connectivity(q);
    if coarse.iter().all(|c| c.len() <= 1) {
        // Nothing actually fused together: not a fused map.
        return None;
    }
    check_map_on_groups(g, sub, q, Some(&coarse)).map(|p| Pattern {
        kind: PatternKind::FusedMap,
        ..p
    })
}

/// Weakly connected components of the quotient arc graph, as sorted group
/// index lists.
fn coarsen_by_connectivity(q: &Quotient) -> Vec<Vec<usize>> {
    let n = q.len();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let c = count;
        count += 1;
        let mut stack = vec![start];
        comp[start] = c;
        while let Some(u) = stack.pop() {
            for &v in q.succs[u].iter().chain(&q.preds[u]) {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
    }
    let mut out = vec![Vec::new(); count];
    for (gidx, &c) in comp.iter().enumerate() {
        out[c].push(gidx);
    }
    out
}

/// The shared map check. `coarse` merges quotient groups into components;
/// `None` means each group is its own component.
fn check_map_on_groups(
    g: &Ddg,
    sub: &SubDdg,
    q: &Quotient,
    coarse: Option<&[Vec<usize>]>,
) -> Option<Pattern> {
    let singletons;
    let comps: &[Vec<usize>] = match coarse {
        Some(c) => c,
        None => {
            singletons = (0..q.len()).map(|i| vec![i]).collect::<Vec<_>>();
            &singletons
        }
    };
    let n = comps.len();
    if n < 2 {
        return None;
    }

    // (1c) relaxed isomorphism. Two levels of relaxation, both weaker than
    // exact subgraph isomorphism as the paper prescribes:
    // * plain loop iterations compare operation-label *sets* — iterations
    //   of one loop legitimately differ in multiplicity when control flow
    //   inside the body diverges (a ray hits two spheres instead of one);
    // * coarsened fusion components compare label *multisets* — fusing
    //   loops with mismatching iteration spaces yields components of
    //   different sizes, which is exactly what must fail (the paper's
    //   missed ray-rot fused maps).
    let mut keys: Vec<Vec<u32>> = Vec::with_capacity(n);
    for c in comps {
        let mut key: Vec<u32> = c
            .iter()
            .flat_map(|&gi| q.groups[gi].label_key.iter().copied())
            .collect();
        key.sort_unstable();
        if coarse.is_none() {
            key.dedup();
        }
        keys.push(key);
    }
    if !keys.windows(2).all(|w| w[0] == w[1]) {
        return None;
    }

    // Component index per group for the cross-component checks.
    let mut comp_of = vec![usize::MAX; q.len()];
    for (ci, c) in comps.iter().enumerate() {
        for &gi in c {
            comp_of[gi] = ci;
        }
    }

    // (2b) no arcs between components.
    for &(a, b) in &q.arcs {
        if comp_of[a] != comp_of[b] {
            return None;
        }
    }
    // (2b)+(1e) no cross-component reachability, even through outside
    // nodes: one lattice pass over the sub-DDG's ancestor cone instead
    // of a per-group closure table.
    if q.cross_component_reach(g, &comp_of) {
        return None;
    }

    // (2c) every component takes input; (2d) output availability.
    let mut outs = 0;
    for c in comps {
        let has_in = c.iter().any(|&gi| q.groups[gi].ext_in);
        if !has_in {
            return None;
        }
        if c.iter().any(|&gi| q.groups[gi].ext_out) {
            outs += 1;
        }
    }
    if outs == 0 {
        return None;
    }
    let kind = if outs == n {
        PatternKind::Map
    } else {
        PatternKind::ConditionalMap
    };

    let components: Vec<Vec<NodeId>> = comps
        .iter()
        .map(|c| {
            c.iter()
                .flat_map(|&gi| q.groups[gi].members.iter().copied())
                .collect()
        })
        .collect();
    let mut nodes = BitSet::new(sub.nodes.capacity());
    for c in &components {
        for m in c {
            nodes.insert(m.index());
        }
    }
    // (1e) in full: no path may leave the pattern and re-enter it, even
    // within one component.
    if !crate::models::verify::is_convex(g, &nodes) {
        return None;
    }
    Some(Pattern::with_metadata(kind, nodes, n, g).with_detail(Detail::Map { components }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subddg::SubKind;
    use ddg::DdgBuilder;

    /// Builds `iters` iteration groups, each one `fmul` node; `chain`
    /// links consecutive iterations (making it a non-map); `outputs`
    /// selects which iterations write output.
    fn loop_sub(iters: usize, chain: bool, outputs: &[bool]) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fmul", true);
        let nodes: Vec<NodeId> = (0..iters)
            .map(|_i| b.add_node(l, 0, 0, 4, 1, 0, vec![]))
            .collect();
        for (i, &n) in nodes.iter().enumerate() {
            b.mark_reads_input(n);
            if outputs[i] {
                b.mark_writes_output(n);
            }
            if chain && i > 0 {
                b.add_arc(nodes[i - 1], n);
            }
        }
        let g = b.finish();
        let sub = SubDdg::grouped(
            BitSet::from_iter(g.len(), 0..iters),
            nodes.iter().map(|&n| vec![n]).collect(),
            SubKind::Loop { loop_id: 0 },
        );
        (g, sub)
    }

    #[test]
    fn clean_map_matches() {
        let (g, sub) = loop_sub(4, false, &[true; 4]);
        let q = Quotient::build(&g, &sub);
        let p = match_map(&g, &sub, &q).expect("map");
        assert_eq!(p.kind, PatternKind::Map);
        assert_eq!(p.components, 4);
    }

    #[test]
    fn conditional_map_when_some_outputs_missing() {
        let (g, sub) = loop_sub(4, false, &[true, false, true, false]);
        let q = Quotient::build(&g, &sub);
        let p = match_map(&g, &sub, &q).expect("conditional map");
        assert_eq!(p.kind, PatternKind::ConditionalMap);
    }

    #[test]
    fn chained_iterations_are_not_a_map() {
        let (g, sub) = loop_sub(4, true, &[true; 4]);
        let q = Quotient::build(&g, &sub);
        assert!(match_map(&g, &sub, &q).is_none());
    }

    #[test]
    fn no_output_anywhere_is_not_a_map() {
        let (g, sub) = loop_sub(3, false, &[false; 3]);
        let q = Quotient::build(&g, &sub);
        assert!(match_map(&g, &sub, &q).is_none());
    }

    #[test]
    fn single_component_is_not_a_map() {
        let (g, sub) = loop_sub(1, false, &[true]);
        let q = Quotient::build(&g, &sub);
        assert!(match_map(&g, &sub, &q).is_none());
    }

    /// Two chained loops A and B, A_i -> B_i: a fused map.
    fn fused_two_loops(iters: usize, skew: bool) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let la = b.intern_label("fmul", true);
        let lb = b.intern_label("fadd", true);
        let a_nodes: Vec<NodeId> = (0..iters)
            .map(|_| b.add_node(la, 0, 0, 4, 1, 0, vec![]))
            .collect();
        let b_nodes: Vec<NodeId> = (0..iters)
            .map(|_| b.add_node(lb, 1, 0, 9, 1, 0, vec![]))
            .collect();
        for i in 0..iters {
            b.mark_reads_input(a_nodes[i]);
            b.mark_writes_output(b_nodes[i]);
            // Skewed: B_i reads from two A's (mismatching spaces).
            b.add_arc(a_nodes[i], b_nodes[i]);
            if skew && i > 0 {
                b.add_arc(a_nodes[i - 1], b_nodes[i]);
            }
        }
        let g = b.finish();
        let groups: Vec<Vec<NodeId>> = a_nodes.iter().chain(&b_nodes).map(|&n| vec![n]).collect();
        let sub = SubDdg::grouped(
            BitSet::from_iter(g.len(), 0..2 * iters),
            groups,
            SubKind::Fused {
                map_part: BitSet::from_iter(g.len(), 0..iters),
                other_part: BitSet::from_iter(g.len(), iters..2 * iters),
                other_kind: PatternKind::Map,
            },
        );
        (g, sub)
    }

    #[test]
    fn fused_map_matches_one_to_one_loops() {
        let (g, sub) = fused_two_loops(3, false);
        let q = Quotient::build(&g, &sub);
        let p = match_fused(&g, &sub, &q).expect("fused map");
        assert_eq!(p.kind, PatternKind::FusedMap);
        assert_eq!(p.components, 3);
        assert_eq!(p.op_labels, vec!["fadd".to_string(), "fmul".to_string()]);
    }

    #[test]
    fn mismatched_iteration_spaces_fail_fusion() {
        // Skew makes one component {A0,B0,A1,B1,...} — non-isomorphic.
        let (g, sub) = fused_two_loops(3, true);
        let q = Quotient::build(&g, &sub);
        assert!(
            match_fused(&g, &sub, &q).is_none(),
            "the paper's ray-rot fused maps are missed for exactly this reason"
        );
    }

    #[test]
    fn plain_map_model_rejects_fused_shape() {
        let (g, sub) = fused_two_loops(3, false);
        let q = Quotient::build(&g, &sub);
        assert!(match_map(&g, &sub, &q).is_none(), "arcs between groups");
    }
}
