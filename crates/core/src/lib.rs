//! `discovery` — the paper's primary contribution: an iterative,
//! constraint-based analysis that finds parallel-pattern instances (maps,
//! linear/tiled reductions, and their compositions) in the dynamic dataflow
//! graphs of legacy sequential *and* parallel programs.
//!
//! Pipeline (paper Fig. 4 / Algorithm 1):
//!
//! 1. [`simplify()`] — strip traversal bookkeeping, memory-address and
//!    branch-condition computation from the traced DDG;
//! 2. [`decompose`] — split the simplified DDG into *loop* sub-DDGs (the
//!    dynamic scope of each static loop) and *associative-component*
//!    sub-DDGs (weakly connected same-operator regions);
//! 3. compaction ([`quotient`]) — collapse each loop iteration into one
//!    node;
//! 4. [`models`] — match each active sub-DDG against the combinatorial
//!    pattern models of §4 with the `cp` solver;
//! 5. [`finder`] — the iterative scheme: *subtract* matches from pool
//!    sub-DDGs (exposing maps hidden in complex loops) and *fuse* adjacent
//!    compatible sub-DDGs (building map-reductions), until a fixpoint;
//!    then *merge*, discarding subsumed patterns;
//! 6. [`report`] — human-readable text and HTML reports pointing at source
//!    lines (paper Fig. 6).
//!
//! Entry point: [`find_patterns`] (or [`analyze_program`] to go straight
//! from a `repro-ir` program).

pub mod decompose;
pub mod finder;
pub mod models;
pub mod partial;
pub mod patterns;
pub mod quotient;
pub mod report;
pub mod simplify;
pub mod subddg;

pub use decompose::ExtractTask;
pub use finder::{
    find_patterns, FinderConfig, FinderResult, FinderState, FrontEnd, MatchJob, MatchPhase,
    PhaseTimes,
};
pub use models::{match_subddg, match_subddg_full, MatchBudget, MatchOutcome};
pub use partial::{classify_across_inputs, partial_patterns, Stability};
pub use patterns::{Found, Pattern, PatternKind};
pub use simplify::{simplify, SimplifyStats};
pub use subddg::{SubDdg, SubKind};

/// Convenience: trace a program and run the full pattern-finding pipeline.
pub fn analyze_program(
    program: &repro_ir::Program,
    run: &trace::RunConfig,
    config: &FinderConfig,
) -> Result<FinderResult, trace::MachineError> {
    let mut cfg = run.clone();
    cfg.trace = trace::TraceMode::Full;
    let result = trace::run(program, &cfg)?;
    let ddg = result.ddg.expect("tracing was enabled");
    Ok(find_patterns(&ddg, config))
}
