//! A work-stealing thread pool for match jobs.
//!
//! Hand-rolled on `std::thread` (this build environment vendors no
//! concurrency crates): each worker owns a deque protected by its own
//! mutex; submissions are distributed round-robin; an idle worker first
//! drains its own deque from the front, then the shared injector, then
//! steals from the *back* of a sibling's deque. A single condvar parks
//! idle workers, and a `pending` count under the condvar's mutex decides
//! when to wake and when to sleep, so no job is ever lost between a
//! submit and a park.
//!
//! Jobs must not block on other pool jobs — the engine's coordinators
//! run on their own threads precisely so that waiting for an iteration's
//! outcomes never occupies a worker slot (a coordinator-as-worker design
//! deadlocks once every worker waits on jobs none of them can run).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters exposed by [`WorkPool::metrics`]. Monotonic over the pool's
/// lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs that finished executing on a worker (or inline after
    /// shutdown).
    pub jobs_executed: u64,
    /// Jobs a worker took from the back of a sibling's deque.
    pub jobs_stolen: u64,
    /// Highest number of queued-but-unclaimed jobs observed at any
    /// submit.
    pub peak_queue_depth: u64,
}

struct State {
    /// Queued jobs not yet claimed by any worker.
    pending: usize,
    shutdown: bool,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    state: Mutex<State>,
    wake: Condvar,
    next: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    peak: AtomicU64,
}

impl Shared {
    /// Claims one queued job: own deque front, injector, then steal from
    /// a sibling's back. The caller has already reserved a job via the
    /// `pending` count, so a claim must eventually succeed; the retry
    /// loop only covers the window where a sibling pops a job this
    /// worker was about to take.
    fn claim(&self, me: usize) -> Job {
        loop {
            if let Some(job) = self.queues[me].lock().unwrap().pop_front() {
                return job;
            }
            if let Some(job) = self.injector.lock().unwrap().pop_front() {
                return job;
            }
            for i in 0..self.queues.len() {
                if i == me {
                    continue;
                }
                if let Some(job) = self.queues[i].lock().unwrap().pop_back() {
                    self.stolen.fetch_add(1, Ordering::Relaxed);
                    return job;
                }
            }
            std::thread::yield_now();
        }
    }
}

/// The pool. Dropping it shuts the workers down after the queued jobs
/// drain; jobs submitted after shutdown run inline on the submitting
/// thread, so no submitter can deadlock on a dead pool.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkPool {
    /// Spawns `workers` worker threads (at least one).
    pub fn new(workers: usize) -> WorkPool {
        let n = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            state: Mutex::new(State {
                pending: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        });
        let handles = (0..n)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkPool {
            shared,
            workers: handles,
        }
    }

    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a job. Round-robin across worker deques; after shutdown
    /// the job runs inline instead.
    pub fn submit(&self, job: Job) {
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                drop(st);
                job();
                self.shared.executed.fetch_add(1, Ordering::Relaxed);
                return;
            }
            st.pending += 1;
            self.shared
                .peak
                .fetch_max(st.pending as u64, Ordering::Relaxed);
        }
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[slot].lock().unwrap().push_back(job);
        self.shared.wake.notify_one();
    }

    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_executed: self.shared.executed.load(Ordering::Relaxed),
            jobs_stolen: self.shared.stolen.load(Ordering::Relaxed),
            peak_queue_depth: self.shared.peak.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.pending > 0 {
                    st.pending -= 1;
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.wake.wait(st).unwrap();
            }
        }
        let job = shared.claim(me);
        job();
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_executed, 100);
        assert!(pool.metrics().peak_queue_depth >= 1);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // One long job head-of-line on each deque except one, then a
        // burst of short jobs: with round-robin placement the short jobs
        // land behind the long ones and must be stolen to finish fast.
        // Only assert completion (steal counts are timing-dependent).
        let pool = WorkPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..40 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                if i % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn submit_after_shutdown_runs_inline() {
        let pool = WorkPool::new(2);
        {
            let mut st = pool.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        pool.shared.wake.notify_all();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            r2.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(ran.load(Ordering::Relaxed), 1, "inline fallback");
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
