//! Re-export of the shared work-stealing pool.
//!
//! The pool started life here as the engine's match-job scheduler; the
//! parallel tracer now runs its free-run jobs on the same
//! implementation, so it lives in the standalone `repro-pool` crate
//! (`trace` cannot depend on the engine — the engine depends on
//! `trace`). The `engine::pool` path stays valid for existing callers.

pub use repro_pool::{PoolMetrics, WorkPool};
