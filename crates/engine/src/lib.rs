//! `repro-engine` — the parallel batch analysis engine.
//!
//! The paper's tool analyzes one program execution at a time; real use —
//! and the paper's own evaluation — runs *many* analyses: eight
//! benchmarks × two versions × several input scales. This crate runs
//! such batches as a job DAG over a work-stealing thread pool:
//!
//! - each [`AnalysisRequest`] (program + input + finder config) is
//!   driven by a *coordinator*: trace → simplify → decompose, then the
//!   iterative match/subtract/fuse loop of `discovery::FinderState`;
//! - within an iteration, the per-sub-DDG **match jobs are independent**
//!   and fan out across the shared [`pool::WorkPool`]; the coordinator
//!   re-applies the outcomes in pool order, so results are byte-identical
//!   to the sequential `discovery::find_patterns` no matter how jobs
//!   interleave (subtraction and fusion stay sequential on the
//!   coordinator — they are the cheap, order-sensitive part);
//! - across requests (and iterations), a [`cache::MatchCache`] memoizes
//!   match outcomes under the canonical structural key of the compacted
//!   sub-DDG view, so op-isomorphic views match once;
//! - finished [`AnalysisResult`]s stream to the caller over a bounded
//!   channel in completion order, with per-phase wall times and
//!   cache/pool counters for the evaluation harness (Fig. 7, Table 3).
//!
//! The match cache is the top layer of the content-addressed
//! [`repro_query::QueryDb`] (DESIGN.md §18). [`Engine::new`] builds a
//! *match-only* DB — batch workloads behave exactly as before — while
//! [`Engine::with_query`] accepts a shared *full* DB whose trace,
//! sub-DDG, and find stages let repeated or lightly-edited requests
//! skip whole phases of the pipeline.

#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod pool;

/// The match cache's original home; PR 10 moved it into `repro-query`
/// as the query layer's match stage. Re-exported here so existing
/// `repro_engine::cache::...` paths keep resolving.
pub use repro_query::match_cache as cache;

use cp::CancelToken;
use discovery::models::{match_subddg_full, MatchOutcome};
use discovery::{FinderConfig, FinderResult, FrontEnd, SubDdg};
use pool::{PoolMetrics, WorkPool};
use repro_query::match_cache::{MatchCache, Probe};
use repro_query::{
    find_key, fingerprint_finder_config, fingerprint_input, subddg_key, trace_key, ExecEntry,
    FindArtifact, QueryDb, StageKind, TraceArtifact,
};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;

/// One analysis to run: a program, the input to trace it on, and the
/// finder configuration.
pub struct AnalysisRequest {
    /// Caller-chosen identifier, echoed in the result.
    pub id: String,
    pub program: repro_ir::Program,
    pub input: trace::RunConfig,
    pub config: FinderConfig,
}

/// Why a request produced no analysis. Every failure is contained to its
/// request: the batch keeps streaming one labeled [`AnalysisResult`] per
/// submission regardless.
#[derive(Debug)]
pub enum EngineError {
    /// The traced program faulted (or hit its step limit / deadline).
    Trace(trace::MachineError),
    /// Match workers died without reporting their outcomes — the job's
    /// reply channel hung up mid-iteration. Contained panics degrade to
    /// per-job faults instead; this is the last-resort path for a panic
    /// outside the job's own containment.
    WorkerLost {
        /// Outcomes missing from the iteration when the channel closed.
        missing: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Trace(e) => write!(f, "trace failed: {e}"),
            EngineError::WorkerLost { missing } => {
                write!(f, "match workers lost: {missing} outcome(s) never arrived")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Trace(e) => Some(e),
            EngineError::WorkerLost { .. } => None,
        }
    }
}

impl From<trace::MachineError> for EngineError {
    fn from(e: trace::MachineError) -> EngineError {
        EngineError::Trace(e)
    }
}

/// A completed (or failed) analysis.
pub struct AnalysisResult {
    pub id: String,
    /// Position of the request in the submitted batch (results stream in
    /// completion order; sort by this to recover submission order).
    pub index: usize,
    pub outcome: Result<Analysis, EngineError>,
    pub metrics: RequestMetrics,
}

/// The successful payload: the finder result plus the rest of the run
/// (final array contents, return value) for output verification.
pub struct Analysis {
    pub result: FinderResult,
    /// The traced run, with the DDG taken out (it was consumed by the
    /// analysis); `arrays`, `return_value` and `steps` remain.
    pub run: trace::RunResult,
}

/// Per-request wall times and cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestMetrics {
    /// Tracing (interpreting the program with DDG construction on).
    pub trace_time: Duration,
    /// Everything after tracing: simplify through merge, including time
    /// spent waiting on match jobs.
    pub find_time: Duration,
    /// Match jobs this request produced (cache hits included).
    pub match_jobs: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Jobs that bypassed the cache (fused sub-DDGs, or cache disabled).
    pub cache_bypassed: u64,
    /// Match jobs that panicked and were degraded to no-match.
    pub match_faults: u64,
    /// Match searches cut short by the per-match budget or the request
    /// deadline.
    pub matches_exhausted: u64,
    /// The request's deadline expired before the analysis finished.
    pub deadline_hit: bool,
    /// The finder result is best-so-far rather than a full fixpoint (see
    /// [`FinderResult::degraded`]); always false for failed requests.
    pub degraded: bool,
    /// The whole analysis (trace *and* find) was replayed from the
    /// query layer — no interpretation, no matching.
    pub query_analyze_hit: bool,
    /// The find phase was replayed from the query layer (the trace ran,
    /// but its DDG hashed to a known finder result).
    pub query_find_hit: bool,
    /// The re-trace itself was skipped: an untraced fingerprint run
    /// resolved the edited program to a cached DDG identity (exec
    /// stage), and the find phase replayed from there. Implies
    /// `query_find_hit`.
    pub query_exec_hit: bool,
}

// Durations serialize as fractional milliseconds; the derive cannot see
// through `Duration`, hence the manual impl.
impl serde::Serialize for RequestMetrics {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        serde::ser_key(out, "trace_ms");
        (self.trace_time.as_secs_f64() * 1e3).serialize_json(out);
        out.push(',');
        serde::ser_key(out, "find_ms");
        (self.find_time.as_secs_f64() * 1e3).serialize_json(out);
        let ints = [
            ("match_jobs", self.match_jobs),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_bypassed", self.cache_bypassed),
            ("match_faults", self.match_faults),
            ("matches_exhausted", self.matches_exhausted),
        ];
        for (k, v) in ints {
            out.push(',');
            serde::ser_key(out, k);
            v.serialize_json(out);
        }
        out.push(',');
        serde::ser_key(out, "deadline_hit");
        self.deadline_hit.serialize_json(out);
        out.push(',');
        serde::ser_key(out, "degraded");
        self.degraded.serialize_json(out);
        out.push(',');
        serde::ser_key(out, "query_analyze_hit");
        self.query_analyze_hit.serialize_json(out);
        out.push(',');
        serde::ser_key(out, "query_find_hit");
        self.query_find_hit.serialize_json(out);
        out.push(',');
        serde::ser_key(out, "query_exec_hit");
        self.query_exec_hit.serialize_json(out);
        out.push('}');
    }
}

/// Engine-wide counter snapshot ([`Engine::metrics`]).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct EngineMetrics {
    pub workers: usize,
    pub jobs_executed: u64,
    pub jobs_stolen: u64,
    pub peak_queue_depth: u64,
    pub requests_completed: u64,
    pub cache_entries: usize,
    /// Cache entry capacity (0 = unbounded).
    pub cache_capacity: usize,
    /// Cache byte capacity (0 = unbounded); whichever of the entry and
    /// byte caps trips first drives eviction.
    pub cache_capacity_bytes: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Entries evicted to keep the cache under capacity.
    pub cache_evictions: u64,
    /// Approximate resident cache footprint in bytes.
    pub cache_bytes: u64,
    /// Pool jobs whose panic was contained (worker survived).
    pub jobs_panicked: u64,
    /// Match jobs degraded to no-match after a contained panic.
    pub match_faults: u64,
    /// Requests that completed with a best-so-far (degraded) result.
    pub requests_degraded: u64,
    /// Requests that produced an [`EngineError`] instead of an analysis.
    pub requests_failed: u64,
    /// Poisoned cache shards cleared and recovered.
    pub cache_poison_recoveries: u64,
    /// Dead match workers replaced in place by [`Engine::heal`].
    pub workers_respawned: u64,
}

impl EngineMetrics {
    /// Cache hits over cacheable probes.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Match workers; 0 means one per available hardware thread.
    pub workers: usize,
    /// Requests analyzed concurrently (coordinator threads); 0 mirrors
    /// `workers`.
    pub max_concurrent_requests: usize,
    /// Memoize match outcomes across requests.
    pub use_cache: bool,
    /// Match-cache entry bound (0 = unbounded); the least recently used
    /// entry of the inserting shard is evicted when a shard runs over.
    /// Defaults to [`cache::DEFAULT_CACHE_CAPACITY`] so long-lived
    /// engines — the serving daemon, or repeated large batches — hold a
    /// bounded footprint.
    pub cache_capacity: usize,
    /// Match-cache *byte* bound (0 = unbounded, the default): entries
    /// vary in size, so deployments that must bound resident memory —
    /// not just entry count — set this and eviction honors whichever
    /// cap trips first.
    pub cache_capacity_bytes: usize,
    /// Bound of the result channel; a full channel backpressures the
    /// coordinators.
    pub results_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            max_concurrent_requests: 0,
            use_cache: true,
            cache_capacity: cache::DEFAULT_CACHE_CAPACITY,
            cache_capacity_bytes: 0,
            results_capacity: 16,
        }
    }
}

impl EngineConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The batch analysis engine. One engine owns one worker pool and one
/// query DB (at minimum its match stage); batches submitted to it
/// share both.
pub struct Engine {
    config: EngineConfig,
    pool: Arc<WorkPool>,
    db: Arc<QueryDb>,
    completed: Arc<AtomicU64>,
    degraded: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
    #[cfg(feature = "fault-inject")]
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Engine {
    /// A match-only engine: exactly the pre-incremental behavior. The
    /// pipeline stages stay off so batch metrics (cache hits on
    /// repeated programs, per-request trace times) are undisturbed.
    pub fn new(config: EngineConfig) -> Engine {
        let db = Arc::new(QueryDb::match_only(
            config.use_cache,
            config.cache_capacity,
            config.cache_capacity_bytes,
        ));
        Engine::with_query(config, db)
    }

    /// An engine sharing a caller-owned query DB. With a *full* DB
    /// (`QueryDb::full`), repeated inputs replay their trace and find
    /// phases instead of recomputing them; the daemon and the
    /// incremental bench construct their engines this way. The DB's own
    /// match-stage settings win over the corresponding
    /// [`EngineConfig`] fields.
    pub fn with_query(config: EngineConfig, db: Arc<QueryDb>) -> Engine {
        Engine {
            pool: Arc::new(WorkPool::new(config.effective_workers())),
            db,
            completed: Arc::new(AtomicU64::new(0)),
            degraded: Arc::new(AtomicU64::new(0)),
            failed: Arc::new(AtomicU64::new(0)),
            faults: Arc::new(AtomicU64::new(0)),
            config,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// The engine's query DB (shared with the daemon for persistence
    /// and stats).
    pub fn query_db(&self) -> &Arc<QueryDb> {
        &self.db
    }

    /// An engine with a deterministic fault-injection plan (test
    /// harness): selected match jobs panic or stall, selected traces
    /// sleep between steps.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(config: EngineConfig, plan: FaultPlan) -> Engine {
        let mut e = Engine::new(config);
        e.fault_plan = Some(Arc::new(plan));
        e
    }

    /// Analyzes a batch. Returns immediately; results stream over the
    /// returned [`Batch`] in completion order.
    pub fn analyze_batch(&self, requests: Vec<AnalysisRequest>) -> Batch {
        let (tx, rx) = mpsc::sync_channel(self.config.results_capacity.max(1));
        let n = requests.len();
        let queue: Arc<Mutex<VecDeque<(usize, AnalysisRequest)>>> =
            Arc::new(Mutex::new(requests.into_iter().enumerate().collect()));
        let coordinators = {
            let cap = if self.config.max_concurrent_requests > 0 {
                self.config.max_concurrent_requests
            } else {
                self.config.effective_workers()
            };
            cap.min(n.max(1))
        };
        let handles = (0..coordinators)
            .map(|c| {
                let queue = Arc::clone(&queue);
                let tx: SyncSender<AnalysisResult> = tx.clone();
                let pool = Arc::clone(&self.pool);
                let db = Arc::clone(&self.db);
                let completed = Arc::clone(&self.completed);
                let degraded = Arc::clone(&self.degraded);
                let failed = Arc::clone(&self.failed);
                let faults = Arc::clone(&self.faults);
                #[cfg(feature = "fault-inject")]
                let plan = self.fault_plan.clone();
                std::thread::Builder::new()
                    .name(format!("engine-coordinator-{c}"))
                    .spawn(move || loop {
                        // A poisoned request queue (a coordinator panicked
                        // mid-pop) still pops cleanly: VecDeque::pop_front
                        // is atomic with respect to panics.
                        let next = queue
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front();
                        let Some((index, req)) = next else { break };
                        #[cfg(feature = "fault-inject")]
                        let result = run_request(&pool, &db, index, req, plan.as_deref());
                        #[cfg(not(feature = "fault-inject"))]
                        let result = run_request(&pool, &db, index, req);
                        note_result(&completed, &degraded, &failed, &faults, &result);
                        if tx.send(result).is_err() {
                            break; // receiver dropped: abandon the batch
                        }
                    })
                    .expect("spawn engine coordinator")
            })
            .collect();
        Batch { rx, handles }
    }

    /// Convenience: run a batch to completion and return the results in
    /// submission order.
    pub fn analyze_all(&self, requests: Vec<AnalysisRequest>) -> Vec<AnalysisResult> {
        let mut results: Vec<AnalysisResult> = self.analyze_batch(requests).collect();
        results.sort_by_key(|r| r.index);
        results
    }

    /// Runs a single request to completion *on the calling thread*,
    /// sharing the engine's worker pool and match cache. This is the
    /// serving path: a resident daemon keeps one engine alive and calls
    /// this from its own request workers, instead of paying a
    /// coordinator thread spawn per request the way [`analyze_batch`]
    /// does per batch. Match jobs still fan out across the shared pool.
    ///
    /// [`analyze_batch`]: Engine::analyze_batch
    pub fn analyze_one(&self, req: AnalysisRequest) -> AnalysisResult {
        #[cfg(feature = "fault-inject")]
        let result = run_request(&self.pool, &self.db, 0, req, self.fault_plan.as_deref());
        #[cfg(not(feature = "fault-inject"))]
        let result = run_request(&self.pool, &self.db, 0, req);
        note_result(
            &self.completed,
            &self.degraded,
            &self.failed,
            &self.faults,
            &result,
        );
        result
    }

    /// Self-healing sweep: replaces any match-worker thread that has
    /// died (a panic outside job containment, or an injected exit) with
    /// a fresh thread on the same slot. Safe to call from a watchdog at
    /// any cadence; returns the number of workers respawned.
    pub fn heal(&self) -> usize {
        self.pool.respawn_dead()
    }

    /// Orders one match worker to exit at its next safe point, so a
    /// harness can prove [`Engine::heal`] restores capacity.
    #[cfg(feature = "fault-inject")]
    pub fn inject_worker_exit(&self, worker: usize) {
        self.pool.inject_worker_exit(worker);
    }

    pub fn metrics(&self) -> EngineMetrics {
        let PoolMetrics {
            jobs_executed,
            jobs_stolen,
            peak_queue_depth,
            jobs_panicked,
            workers_respawned,
        } = self.pool.metrics();
        let cache = self.db.match_cache();
        EngineMetrics {
            workers: self.pool.worker_count(),
            jobs_executed,
            jobs_stolen,
            peak_queue_depth,
            requests_completed: self.completed.load(Ordering::Relaxed),
            cache_entries: cache.entries(),
            cache_capacity: cache.capacity(),
            cache_capacity_bytes: cache.capacity_bytes(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_bytes: cache.approx_bytes(),
            jobs_panicked,
            match_faults: self.faults.load(Ordering::Relaxed),
            requests_degraded: self.degraded.load(Ordering::Relaxed),
            requests_failed: self.failed.load(Ordering::Relaxed),
            cache_poison_recoveries: cache.poison_recoveries(),
            workers_respawned,
        }
    }
}

/// A batch in flight: iterate to receive results in completion order.
/// Dropping it joins the coordinators (after disconnecting, so an
/// abandoned batch winds down instead of blocking on the channel).
pub struct Batch {
    rx: Receiver<AnalysisResult>,
    handles: Vec<JoinHandle<()>>,
}

impl Iterator for Batch {
    type Item = AnalysisResult;

    fn next(&mut self) -> Option<AnalysisResult> {
        self.rx.recv().ok()
    }
}

impl Drop for Batch {
    fn drop(&mut self) {
        // Disconnect first so coordinators blocked on send() observe the
        // hangup instead of deadlocking against our join.
        let (dead_tx, dead_rx) = mpsc::sync_channel(1);
        drop(dead_tx);
        let _ = std::mem::replace(&mut self.rx, dead_rx);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Folds one finished request into the engine-wide counters (shared by
/// the batch coordinators and [`Engine::analyze_one`]).
fn note_result(
    completed: &AtomicU64,
    degraded: &AtomicU64,
    failed: &AtomicU64,
    faults: &AtomicU64,
    result: &AnalysisResult,
) {
    completed.fetch_add(1, Ordering::Relaxed);
    faults.fetch_add(result.metrics.match_faults, Ordering::Relaxed);
    if result.metrics.degraded {
        degraded.fetch_add(1, Ordering::Relaxed);
    }
    if result.outcome.is_err() {
        failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A match job's reply to its coordinator.
enum JobReply {
    Done(MatchOutcome),
    /// The model panicked inside the job's own containment; the
    /// coordinator degrades the sub-DDG to no-match and counts the fault.
    Fault,
}

/// The query-layer keys one request resolves to, computed up front
/// when the DB is full (`None` in match-only engines). Holding them in
/// one place keeps the hit/miss/put sites in [`run_request`] honest
/// about using the *same* keys.
struct QueryKeys {
    trace_key: repro_ir::ContentHash,
    config_fp: repro_ir::ContentHash,
    program_fp: repro_ir::ContentHash,
}

/// Traces and analyzes one request, fanning match jobs out to `pool`.
/// The request's deadline (when configured) is anchored *here*, before
/// tracing, so it covers the whole request: trace, finder iterations,
/// and every match search.
///
/// With a full query DB the request walks the memo chain top-down:
/// a `trace` hit whose DDG fingerprint also has a `find` hit replays
/// the entire analysis; a fresh trace whose DDG hashes to a known
/// finder result skips matching; otherwise sub-DDG extraction and the
/// match stage each memoize what they can.
fn run_request(
    pool: &Arc<WorkPool>,
    db: &Arc<QueryDb>,
    index: usize,
    req: AnalysisRequest,
    #[cfg(feature = "fault-inject")] plan: Option<&FaultPlan>,
) -> AnalysisResult {
    let mut req_span = obs::span_args("engine.request", || {
        vec![
            ("id", obs::ArgValue::Str(req.id.clone())),
            ("index", obs::ArgValue::U64(index as u64)),
        ]
    });
    let mut metrics = RequestMetrics::default();
    let cancel = match req.config.deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let cache: &MatchCache = db.match_cache();

    // Content-address the request. Only complete, deadline-free-at-cache
    // artifacts are ever stored, so a hit is always safe to replay.
    let keys = db.is_full().then(|| {
        let program_fp = repro_ir::fingerprint_program(&req.program);
        QueryKeys {
            trace_key: trace_key(program_fp, fingerprint_input(&req.input)),
            config_fp: fingerprint_finder_config(&req.config),
            program_fp,
        }
    });
    if let Some(keys) = &keys {
        if let Some(traced) = db.trace_get(keys.trace_key) {
            if let Some(found) = db.find_get(find_key(traced.ddg_fp, keys.config_fp)) {
                metrics.query_analyze_hit = true;
                metrics.query_find_hit = true;
                req_span.arg("result", obs::ArgValue::Static("query-hit"));
                return AnalysisResult {
                    id: req.id,
                    index,
                    outcome: Ok(Analysis {
                        result: found.to_result(),
                        run: traced.to_run_result(),
                    }),
                    metrics,
                };
            }
        }
    }

    let t0 = Instant::now();
    let mut input = req.input.clone();
    input.trace = trace::TraceMode::Full;
    if let Some(d) = cancel.deadline() {
        input.deadline = Some(input.deadline.map_or(d, |existing| existing.min(d)));
    }
    #[cfg(feature = "fault-inject")]
    if let Some(f) = plan.and_then(|p| p.trace_fault_for(&req.id)) {
        input.fault = Some(f);
    }

    // Exec-fingerprint probe: when the exec stage holds *any* entries,
    // spend an untraced run (~5x cheaper than tracing) hashing the
    // executed instruction/address stream. Equal streams produce
    // byte-identical DDGs, so a fingerprint hit re-keys an *edited*
    // program — a trace-stage miss — to its cached DDG identity, and a
    // find hit on that identity replays the whole analysis without ever
    // tracing. Any miss falls through to the normal traced run. The
    // probe is skipped while the exec index is empty (a cold DB never
    // pays for it) and under injected trace faults (the fault must
    // surface through the real run).
    if let Some(keys) = &keys {
        #[cfg(feature = "fault-inject")]
        let probe_safe = input.fault.is_none();
        #[cfg(not(feature = "fault-inject"))]
        let probe_safe = true;
        if db.exec_len() > 0 && probe_safe {
            let mut probe_input = input.clone();
            probe_input.trace = trace::TraceMode::Off;
            probe_input.exec_fingerprint = true;
            if let Ok(probe_run) = trace::run(&req.program, &probe_input) {
                if let Some(entry) = probe_run
                    .exec_fp
                    .and_then(|fp| db.exec_get(repro_ir::ContentHash(fp)))
                {
                    let fkey = find_key(entry.ddg_fp, keys.config_fp);
                    if let Some(found) = db.find_get(fkey) {
                        db.trace_put(
                            keys.trace_key,
                            TraceArtifact::from_run(
                                &probe_run,
                                entry.ddg_fp,
                                entry.ddg_nodes as usize,
                            ),
                        );
                        db.record_dep(keys.program_fp, StageKind::Trace, keys.trace_key);
                        db.record_dep(keys.trace_key, StageKind::Find, fkey);
                        metrics.query_find_hit = true;
                        metrics.query_exec_hit = true;
                        metrics.trace_time = t0.elapsed();
                        req_span.arg("result", obs::ArgValue::Static("query-exec-hit"));
                        return AnalysisResult {
                            id: req.id,
                            index,
                            outcome: Ok(Analysis {
                                result: found.to_result(),
                                run: probe_run,
                            }),
                            metrics,
                        };
                    }
                }
            }
        }
        // Record the fingerprint on full runs so future edits can probe
        // against it — but not at the cost of forcing a parallel trace
        // sequential.
        if input.trace_workers < 2 {
            input.exec_fingerprint = true;
        }
    }

    let run = trace::run(&req.program, &input);
    metrics.trace_time = t0.elapsed();

    let mut run = match run {
        Ok(r) => r,
        Err(e) => {
            metrics.deadline_hit = cancel.is_expired();
            req_span.arg("result", obs::ArgValue::Static("trace-error"));
            return AnalysisResult {
                id: req.id,
                index,
                outcome: Err(EngineError::Trace(e)),
                metrics,
            };
        }
    };
    let ddg = run.ddg.take().expect("tracing was enabled");

    // Memoize the fresh trace and try the find stage: an edited program
    // often re-traces to a byte-identical DDG (e.g. a constant change —
    // DDG nodes carry no runtime values), and then the whole find phase
    // replays from its fingerprint.
    let mut find_stage = None;
    if let Some(keys) = &keys {
        let ddg_fp = repro_query::fingerprint_ddg(&ddg);
        db.trace_put(
            keys.trace_key,
            TraceArtifact::from_run(&run, ddg_fp, ddg.len()),
        );
        db.record_dep(keys.program_fp, StageKind::Trace, keys.trace_key);
        if let Some(exec_fp) = run.exec_fp {
            db.exec_put(
                repro_ir::ContentHash(exec_fp),
                ExecEntry {
                    ddg_fp,
                    ddg_nodes: ddg.len() as u64,
                },
            );
        }
        let fkey = find_key(ddg_fp, keys.config_fp);
        db.record_dep(keys.trace_key, StageKind::Find, fkey);
        if let Some(found) = db.find_get(fkey) {
            metrics.query_find_hit = true;
            req_span.arg("result", obs::ArgValue::Static("query-find-hit"));
            return AnalysisResult {
                id: req.id,
                index,
                outcome: Ok(Analysis {
                    result: found.to_result(),
                    run,
                }),
                metrics,
            };
        }
        find_stage = Some((ddg_fp, fkey));
    }

    let t0 = Instant::now();
    // Front-end: simplify on this coordinator, then fan the per-sub-DDG
    // extraction tasks out as pool jobs so they interleave with match
    // work from other requests. Results are reassembled in task order,
    // so the pool seeding — and with it every downstream byte — matches
    // the sequential finder exactly. Extraction jobs never wait on other
    // pool jobs; only this coordinator blocks on the reply channel.
    let mut fe = FrontEnd::new(&ddg, &req.config, cancel.clone());
    let tasks = fe.take_tasks();
    let n_tasks = tasks.len();
    let mut extracted: Vec<Option<Vec<SubDdg>>> = (0..n_tasks).map(|_| None).collect();
    // Sub-DDG stage: extraction is pure in (simplified graph, task
    // index), and the simplified graph is pure in (DDG, simplify flag),
    // so each task's pool slice is keyed off the DDG fingerprint.
    let skeys: Vec<Option<repro_ir::ContentHash>> = (0..n_tasks)
        .map(|i| find_stage.map(|(ddg_fp, _)| subddg_key(ddg_fp, req.config.enable_simplify, i)))
        .collect();
    {
        let (tx, rx) = mpsc::channel::<(usize, Vec<SubDdg>)>();
        let mut submitted = 0usize;
        for (i, task) in tasks.into_iter().enumerate() {
            if let Some(skey) = skeys[i] {
                if let Some(cached) = db.subddg_get(skey) {
                    extracted[i] = Some((*cached).clone());
                    continue;
                }
            }
            submitted += 1;
            let g = fe.graph_arc();
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                // A panicking extraction is contained by the pool; the
                // dropped sender below surfaces it as a lost worker.
                let _ = tx.send((i, discovery::decompose::extract(&g, &task)));
            }));
        }
        drop(tx);
        for got in 0..submitted {
            match rx.recv() {
                Ok((i, subs)) => {
                    if let (Some(skey), Some(keys)) = (skeys[i], &keys) {
                        db.subddg_put(skey, Arc::new(subs.clone()));
                        db.record_dep(keys.trace_key, StageKind::SubDdg, skey);
                    }
                    extracted[i] = Some(subs);
                }
                Err(_) => {
                    metrics.deadline_hit = cancel.is_expired();
                    req_span.arg("result", obs::ArgValue::Static("worker-lost"));
                    return AnalysisResult {
                        id: req.id,
                        index,
                        outcome: Err(EngineError::WorkerLost {
                            missing: submitted - got,
                        }),
                        metrics,
                    };
                }
            }
        }
    }
    let mut state = fe.assemble(extracted.into_iter().map(Option::unwrap).collect());

    while !state.is_done() {
        let jobs = state.active_jobs();
        let budget = state.budget();
        // The finder owns the one wall clock (and obs span) for the match
        // phase — cache probes and job waits included — so the sequential
        // and parallel drivers report the same "matching" time (see
        // `FinderState::begin_matching`).
        let phase = state.begin_matching();
        let (tx, rx) = mpsc::channel::<(usize, JobReply)>();
        let mut outcomes: Vec<(usize, MatchOutcome)> = Vec::with_capacity(jobs.len());
        let mut in_flight = 0usize;
        for job in jobs {
            let job_ordinal = metrics.match_jobs;
            metrics.match_jobs += 1;
            let pending = match cache.probe(state.graph(), &job.sub, &budget) {
                Probe::Hit(p) => {
                    metrics.cache_hits += 1;
                    obs::instant("cache.hit");
                    #[cfg(debug_assertions)]
                    if let Some(p) = &p {
                        debug_assert!(
                            discovery::models::verify::check(state.graph(), p),
                            "cache rebuilt an invalid pattern: {}",
                            p.describe()
                        );
                    }
                    outcomes.push((job.pool_index, MatchOutcome::definitive(p)));
                    continue;
                }
                Probe::Miss(pending) => {
                    metrics.cache_misses += 1;
                    obs::instant("cache.miss");
                    Some(pending)
                }
                Probe::Uncacheable => {
                    metrics.cache_bypassed += 1;
                    obs::instant("cache.bypass");
                    None
                }
            };
            let g = state.graph_arc();
            let job_db = Arc::clone(db);
            let tx = tx.clone();
            #[cfg(feature = "fault-inject")]
            let injected = plan.map_or(fault::JobFault::default(), |p| {
                p.match_fault(&req.id, job_ordinal)
            });
            #[cfg(not(feature = "fault-inject"))]
            let _ = job_ordinal;
            in_flight += 1;
            pool.submit(Box::new(move || {
                // Panic isolation: a panicking model (or injected fault)
                // becomes a recorded per-sub-DDG fault on the
                // coordinator, degraded to no-match — never a dead
                // worker or a lost iteration.
                let matched = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-inject")]
                    injected.fire();
                    match_subddg_full(&g, &job.sub, &budget)
                }));
                let reply = match matched {
                    Ok(outcome) => {
                        // Exhausted (time-truncated) outcomes are
                        // time-dependent, not structural: memoizing one
                        // would serve a truncated no-match to a request
                        // with time to spare. Only definitive outcomes
                        // enter the cache.
                        if let Some(pending) = pending {
                            if !outcome.exhausted {
                                job_db
                                    .match_cache()
                                    .fulfil(pending, &job.sub, &outcome.pattern);
                            }
                        }
                        JobReply::Done(outcome)
                    }
                    Err(_) => JobReply::Fault,
                };
                // The coordinator may have abandoned the batch.
                let _ = tx.send((job.pool_index, reply));
            }));
        }
        drop(tx);
        for got in 0..in_flight {
            match rx.recv() {
                Ok((pool_index, JobReply::Done(outcome))) => {
                    outcomes.push((pool_index, outcome));
                }
                Ok((pool_index, JobReply::Fault)) => {
                    state.note_fault();
                    metrics.match_faults += 1;
                    obs::instant("engine.match_fault");
                    outcomes.push((pool_index, MatchOutcome::default()));
                }
                Err(_) => {
                    // Every sender hung up with outcomes still owed: a
                    // worker died outside the job's containment. Fail
                    // this request; the batch and the engine live on.
                    metrics.deadline_hit = cancel.is_expired();
                    req_span.arg("result", obs::ArgValue::Static("worker-lost"));
                    return AnalysisResult {
                        id: req.id,
                        index,
                        outcome: Err(EngineError::WorkerLost {
                            missing: in_flight - got,
                        }),
                        metrics,
                    };
                }
            }
        }
        state.end_matching(phase);
        // `apply_matches` re-applies in pool order; sorting here just
        // keeps the outcome list itself deterministic for debugging.
        outcomes.sort_by_key(|(i, _)| *i);
        state.apply_matches(outcomes);
    }

    let result = state.finish();
    // Only a complete fixpoint is worth remembering: a degraded or
    // deadline-cut result replayed later would silently under-report.
    if let Some((_, fkey)) = find_stage {
        if !result.degraded && !result.cancelled {
            db.find_put(fkey, FindArtifact::from_result(&result));
        }
    }
    metrics.find_time = t0.elapsed();
    metrics.matches_exhausted = result.matches_exhausted as u64;
    metrics.deadline_hit = result.cancelled;
    metrics.degraded = result.degraded;
    req_span.arg(
        "result",
        obs::ArgValue::Static(if result.degraded { "degraded" } else { "ok" }),
    );
    AnalysisResult {
        id: req.id,
        index,
        outcome: Ok(Analysis { result, run }),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discovery::PatternKind;

    fn map_request(id: &str, elems: usize) -> AnalysisRequest {
        let src = format!(
            "float in[{elems}];\nfloat out[{elems}];\nvoid main() {{\n  int i;\n  \
             for (i = 0; i < {elems}; i++) {{\n    out[i] = in[i] * 2.0 + 1.0;\n  }}\n  \
             output(out);\n}}\n"
        );
        let program = minc::compile(id, &src).unwrap();
        let input = trace::RunConfig::default()
            .with_f64("in", &(0..elems).map(|i| i as f64).collect::<Vec<_>>());
        AnalysisRequest {
            id: id.to_string(),
            program,
            input,
            config: FinderConfig::default(),
        }
    }

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn single_request_finds_the_map() {
        let engine = small_engine();
        let results = engine.analyze_all(vec![map_request("one", 4)]);
        assert_eq!(results.len(), 1);
        let analysis = results[0].outcome.as_ref().expect("trace ok");
        let kinds: Vec<_> = analysis.result.reported().map(|f| f.pattern.kind).collect();
        assert_eq!(kinds, vec![PatternKind::Map]);
        assert!(results[0].metrics.match_jobs > 0);
        // The run (sans DDG) is returned for output verification.
        assert_eq!(analysis.run.f64s("out"), vec![1.0, 3.0, 5.0, 7.0]);
        assert!(analysis.run.ddg.is_none());
    }

    #[test]
    fn batch_results_recover_submission_order_and_share_the_cache() {
        // One request at a time, so each probe sees the previous
        // request's stored outcomes (concurrent coordinators may race
        // past each other's fulfils — that only costs hits, never
        // correctness — which would make this assertion flaky).
        let engine = Engine::new(EngineConfig {
            workers: 4,
            max_concurrent_requests: 1,
            ..EngineConfig::default()
        });
        // Four requests over two structural shapes: the repeats must hit.
        let reqs = vec![
            map_request("a", 4),
            map_request("b", 4),
            map_request("c", 6),
            map_request("d", 6),
        ];
        let results = engine.analyze_all(reqs);
        assert_eq!(
            results.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c", "d"]
        );
        let m = engine.metrics();
        assert!(m.cache_hits > 0, "repeated shapes must hit: {m:?}");
        assert_eq!(m.requests_completed, 4);
        assert_eq!(m.workers, 4);
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let cached = Engine::new(EngineConfig {
            workers: 4,
            max_concurrent_requests: 1,
            ..EngineConfig::default()
        });
        let uncached = Engine::new(EngineConfig {
            workers: 4,
            use_cache: false,
            ..EngineConfig::default()
        });
        let a = cached.analyze_all(vec![map_request("x", 5), map_request("y", 5)]);
        let b = uncached.analyze_all(vec![map_request("x", 5), map_request("y", 5)]);
        assert!(cached.metrics().cache_hits > 0);
        assert_eq!(uncached.metrics().cache_hits, 0);
        for (ra, rb) in a.iter().zip(&b) {
            let (pa, pb) = (
                &ra.outcome.as_ref().unwrap().result,
                &rb.outcome.as_ref().unwrap().result,
            );
            assert_eq!(pa.found.len(), pb.found.len());
            for (fa, fb) in pa.found.iter().zip(&pb.found) {
                assert_eq!(fa.pattern.kind, fb.pattern.kind);
                assert_eq!(fa.pattern.detail, fb.pattern.detail);
                assert_eq!(fa.iteration, fb.iteration);
            }
        }
    }

    #[test]
    fn trace_errors_are_reported_not_fatal() {
        let engine = small_engine();
        // An out-of-bounds store fails the simulated machine.
        let src = "float in[4];\nfloat out[2];\nvoid main() {\n  int i;\n  \
                   for (i = 0; i < 4; i++) {\n    out[i] = in[i];\n  }\n  output(out);\n}\n";
        let program = minc::compile("bad", src).unwrap();
        let req = AnalysisRequest {
            id: "bad".into(),
            program,
            input: trace::RunConfig::default(),
            config: FinderConfig::default(),
        };
        let results = engine.analyze_all(vec![req, map_request("good", 4)]);
        assert!(results[0].outcome.is_err());
        assert!(results[1].outcome.is_ok());
    }

    #[test]
    fn zero_match_budget_streams_a_degraded_partial_result() {
        // End-to-end budget exhaustion: a streamcluster-shaped program
        // whose tiled-reduction search gets no time. The request still
        // completes — cheap structural matches survive, the result is
        // flagged degraded, and the exhausted outcome is never cached.
        let src = r#"
float p[8];
float hizs[2];
float result[1];
barrier b;

float dist(float x, float y) {
    float d = x - y;
    return sqrt(d * d);
}

void pkmedian(int pid, int nproc) {
    int k1 = pid * 4;
    int k2 = k1 + 4;
    float myhiz = 0.0;
    int kk;
    for (kk = k1; kk < k2; kk++) {
        myhiz = myhiz + dist(p[kk], p[0]);
    }
    hizs[pid] = myhiz;
    barrier_wait(b);
    if (pid == 0) {
        float hiz = 0.0;
        int i;
        for (i = 0; i < nproc; i++) {
            hiz = hiz + hizs[i];
        }
        result[0] = hiz;
    }
}

void main() {
    int t0;
    int t1;
    t0 = spawn pkmedian(0, 2);
    t1 = spawn pkmedian(1, 2);
    join(t0);
    join(t1);
    output(result);
}
"#;
        let program = minc::compile("sc", src).unwrap();
        let input = trace::RunConfig::default()
            .with_f64("p", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
            .with_barrier_participants(2);
        let mut config = FinderConfig::default();
        config.budget.time = Duration::ZERO;
        let req = AnalysisRequest {
            id: "sc".into(),
            program,
            input,
            config,
        };
        let engine = small_engine();
        let results = engine.analyze_all(vec![req]);
        let analysis = results[0].outcome.as_ref().expect("completes degraded");
        assert!(analysis.result.degraded);
        assert!(!analysis.result.cancelled, "budget, not deadline");
        assert!(analysis.result.matches_exhausted > 0);
        assert!(results[0].metrics.degraded);
        assert!(results[0].metrics.matches_exhausted > 0);
        // Best-so-far: the budget-free matchers still delivered.
        let kinds: Vec<_> = analysis
            .result
            .found
            .iter()
            .map(|f| f.pattern.kind)
            .collect();
        assert!(kinds.contains(&PatternKind::LinearReduction), "{kinds:?}");
        assert!(!kinds.contains(&PatternKind::TiledReduction), "{kinds:?}");
        assert_eq!(engine.metrics().requests_degraded, 1);
    }

    #[test]
    fn an_expired_deadline_still_streams_a_labeled_result() {
        let mut req = map_request("late", 4);
        req.config.deadline = Some(Duration::ZERO);
        let engine = small_engine();
        let results = engine.analyze_all(vec![req, map_request("on-time", 4)]);
        assert_eq!(results.len(), 2);
        // The deadline expired before (or during) the analysis; either a
        // degraded analysis or a trace-deadline error is acceptable, but
        // the result must be labeled and the batch must keep going.
        match &results[0].outcome {
            Ok(a) => {
                assert!(a.result.cancelled);
                assert!(a.result.degraded);
                assert!(results[0].metrics.deadline_hit);
            }
            Err(EngineError::Trace(e)) => {
                assert!(e.message.contains("deadline"), "{e}");
                assert!(results[0].metrics.deadline_hit);
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
        let on_time = results[1].outcome.as_ref().expect("unaffected sibling");
        assert!(!on_time.result.degraded);
    }

    #[test]
    fn dropping_a_batch_early_does_not_hang() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            results_capacity: 1,
            ..EngineConfig::default()
        });
        let reqs = (0..6).map(|i| map_request(&format!("r{i}"), 4)).collect();
        let mut batch = engine.analyze_batch(reqs);
        let first = batch.next();
        assert!(first.is_some());
        drop(batch); // joins coordinators; must not deadlock
    }
}
