//! The structural-hash match cache.
//!
//! Matching dominates finder time (paper Fig. 7: ≈ 48%), and batches of
//! related analyses — the seq and Pthreads versions of one benchmark, or
//! one benchmark at several input scales — keep presenting the matcher
//! with sub-DDGs that are *op-isomorphic at the group level*: same label
//! multisets, flags, arc and reachability shape, static-op equality
//! pattern. The cache memoizes match outcomes under the canonical
//! [`ddg::StructuralKey`] of the compacted view, so the second such view
//! skips the models entirely.
//!
//! Soundness rests on two facts, both enforced elsewhere:
//!
//! - the pattern models consume *only* the facts the key encodes (the
//!   `ddg` crate's property tests check that equal keys imply equal
//!   matcher-visible facts — no false hits);
//! - a matcher is a deterministic function of those facts plus the
//!   dispatch class and time budget, which are part of the cache key.
//!
//! Because a pattern's metadata (source lines, label strings, node ids)
//! is *not* structural, hits store the match in **group-index space**
//! and rebuild the concrete [`Pattern`] against the probing sub-DDG's
//! own groups and graph — a hit on an isomorphic view from another
//! program still reports the probing program's source locations, and is
//! byte-identical to what a fresh match would have produced.
//!
//! Fused sub-DDGs are not cached: their matchers re-derive the inner
//! map/reduction split from the `SubKind::Fused` payload (raw node
//! sets), which the group-level key does not see.

use ddg::{Ddg, NodeId, StructuralKey};
use discovery::models::MatchBudget;
use discovery::patterns::Detail;
use discovery::{Pattern, PatternKind, SubDdg, SubKind};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Dispatch classes of the non-fused sub-DDG kinds. The finder matches
/// loop-shaped views against map-then-linear and associative views
/// against linear-then-tiled, so views from different classes must never
/// share a cache line even when structurally equal.
fn dispatch_class(kind: &SubKind) -> Option<u64> {
    match kind {
        SubKind::Loop { .. } | SubKind::Derived { from_loop: Some(_) } => Some(0),
        SubKind::Assoc { .. } | SubKind::Derived { from_loop: None } => Some(1),
        SubKind::Fused { .. } => None,
    }
}

/// The compaction groups a key and a reconstruction see: the sub-DDG's
/// own groups, or singletons in ascending node order — exactly the view
/// `discovery::quotient::Quotient::build` compacts to.
fn groups_of(sub: &SubDdg) -> Vec<Vec<NodeId>> {
    match &sub.groups {
        Some(gs) => gs.clone(),
        None => sub.nodes.iter().map(|n| vec![NodeId(n as u32)]).collect(),
    }
}

#[derive(PartialEq, Eq, Hash)]
struct CacheKey {
    key: StructuralKey,
    budget_ms: u64,
}

/// A match outcome in group-index space.
enum CachedMatch {
    Map {
        kind: PatternKind,
        components: Vec<Vec<u32>>,
    },
    Linear {
        chain: Vec<u32>,
    },
    Tiled {
        partials: Vec<Vec<u32>>,
        final_chain: Vec<u32>,
    },
}

/// Result of a cache probe.
pub enum Probe {
    /// Fused sub-DDG (or the cache is disabled): match it directly.
    Uncacheable,
    /// Memoized outcome, rebuilt against the probing sub-DDG.
    Hit(Option<Pattern>),
    /// Unknown structure; match it, then [`MatchCache::fulfil`] the
    /// ticket with the outcome.
    Miss(PendingEntry),
}

/// A miss ticket carrying the computed key to the fulfil site.
pub struct PendingEntry {
    key: CacheKey,
}

/// Shard count: enough to spread concurrent workers, small enough that
/// clearing one poisoned shard loses little.
const SHARDS: usize = 16;

/// Counter snapshot ([`MatchCache::metrics`]).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheMetrics {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    /// Poisoned shards recovered (cleared and reused). Each event is a
    /// shard's worth of memoized outcomes dropped, never wrong data
    /// served.
    pub poison_recoveries: u64,
}

/// The shared, thread-safe memo table, sharded by key hash.
pub struct MatchCache {
    enabled: bool,
    shards: Vec<Mutex<HashMap<CacheKey, Option<CachedMatch>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl MatchCache {
    pub fn new(enabled: bool) -> MatchCache {
        MatchCache {
            enabled,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Locks the shard holding `key`. A poisoned shard — a thread
    /// panicked mid-update, e.g. an injected model fault during
    /// `fulfil` — is *cleared* and recovered: a memo table may always
    /// drop entries (that only costs future hits), whereas serving a
    /// half-updated entry could break parity. The event is counted in
    /// [`CacheMetrics::poison_recoveries`].
    fn shard_for(&self, key: &CacheKey) -> MutexGuard<'_, HashMap<CacheKey, Option<CachedMatch>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let shard = &self.shards[(h.finish() as usize) % SHARDS];
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                shard.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Looks `sub`'s structural key up.
    pub fn probe(&self, g: &Ddg, sub: &SubDdg, budget: &MatchBudget) -> Probe {
        if !self.enabled {
            return Probe::Uncacheable;
        }
        let Some(class) = dispatch_class(&sub.kind) else {
            return Probe::Uncacheable;
        };
        let groups = groups_of(sub);
        let key = CacheKey {
            key: ddg::grouped_key(g, &groups, class),
            budget_ms: budget.time.as_millis() as u64,
        };
        let cached = {
            let map = self.shard_for(&key);
            map.get(&key).map(|entry| entry.as_ref().map(rebuild_args))
        };
        match cached {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Probe::Hit(entry.map(|args| rebuild(g, sub, &groups, args)))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Probe::Miss(PendingEntry { key })
            }
        }
    }

    /// Stores the outcome of a missed probe. `sub` must be the sub-DDG
    /// the probe ran on.
    pub fn fulfil(&self, pending: PendingEntry, sub: &SubDdg, outcome: &Option<Pattern>) {
        let entry = match outcome {
            None => Some(None),
            Some(p) => encode(sub, p).map(Some),
        };
        // An unencodable pattern (a detail node outside the group view;
        // never produced by the current models) is simply not cached.
        if let Some(entry) = entry {
            self.shard_for(&pending.key).insert(pending.key, entry);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            entries: self.entries(),
            hits: self.hits(),
            misses: self.misses(),
            poison_recoveries: self.poison_recoveries(),
        }
    }
}

/// Owned arguments for [`rebuild`], cloned out of the table so the lock
/// is not held while patterns are being reconstructed.
enum RebuildArgs {
    Map {
        kind: PatternKind,
        components: Vec<Vec<u32>>,
    },
    Linear {
        chain: Vec<u32>,
    },
    Tiled {
        partials: Vec<Vec<u32>>,
        final_chain: Vec<u32>,
    },
}

fn rebuild_args(m: &CachedMatch) -> RebuildArgs {
    match m {
        CachedMatch::Map { kind, components } => RebuildArgs::Map {
            kind: *kind,
            components: components.clone(),
        },
        CachedMatch::Linear { chain } => RebuildArgs::Linear {
            chain: chain.clone(),
        },
        CachedMatch::Tiled {
            partials,
            final_chain,
        } => RebuildArgs::Tiled {
            partials: partials.clone(),
            final_chain: final_chain.clone(),
        },
    }
}

/// Encodes a freshly matched pattern in group-index space. Every node a
/// detail references is mapped to its `(group, member)` position; chains
/// always reference group representatives (`members[0]`) and map
/// components cover whole groups, so group indices suffice.
fn encode(sub: &SubDdg, p: &Pattern) -> Option<CachedMatch> {
    let groups = groups_of(sub);
    let mut group_of: HashMap<u32, u32> = HashMap::new();
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            group_of.insert(m.0, gi as u32);
        }
    }
    let map_chain = |chain: &[NodeId]| -> Option<Vec<u32>> {
        chain.iter().map(|n| group_of.get(&n.0).copied()).collect()
    };
    match &p.detail {
        // The cached dispatch classes always attach detail; a detail-less
        // pattern has no group-space encoding, so it is not cached.
        Detail::None => None,
        Detail::Map { components } => {
            // Members of one group are contiguous in a component; keep
            // each group index once, in order.
            let mut comps = Vec::with_capacity(components.len());
            for c in components {
                let mut gis: Vec<u32> = Vec::new();
                for n in c {
                    let gi = *group_of.get(&n.0)?;
                    if gis.last() != Some(&gi) {
                        gis.push(gi);
                    }
                }
                comps.push(gis);
            }
            Some(CachedMatch::Map {
                kind: p.kind,
                components: comps,
            })
        }
        Detail::Linear { chain } => Some(CachedMatch::Linear {
            chain: map_chain(chain)?,
        }),
        Detail::Tiled {
            partials,
            final_chain,
        } => Some(CachedMatch::Tiled {
            partials: partials
                .iter()
                .map(|c| map_chain(c))
                .collect::<Option<Vec<_>>>()?,
            final_chain: map_chain(final_chain)?,
        }),
    }
}

/// Rebuilds a concrete pattern for `sub` from a group-index match. The
/// probing view's key equals the stored view's key, so group count and
/// per-group member counts agree and every index resolves.
fn rebuild(g: &Ddg, sub: &SubDdg, groups: &[Vec<NodeId>], args: RebuildArgs) -> Pattern {
    let rep = |gi: &u32| groups[*gi as usize][0];
    match args {
        RebuildArgs::Map { kind, components } => {
            let components: Vec<Vec<NodeId>> = components
                .iter()
                .map(|gis| {
                    gis.iter()
                        .flat_map(|gi| groups[*gi as usize].iter().copied())
                        .collect()
                })
                .collect();
            let n = components.len();
            Pattern::with_metadata(kind, sub.nodes.clone(), n, g)
                .with_detail(Detail::Map { components })
        }
        RebuildArgs::Linear { chain } => {
            let n = chain.len();
            Pattern::with_metadata(PatternKind::LinearReduction, sub.nodes.clone(), n, g)
                .with_detail(Detail::Linear {
                    chain: chain.iter().map(rep).collect(),
                })
        }
        RebuildArgs::Tiled {
            partials,
            final_chain,
        } => {
            let n = groups.len();
            Pattern::with_metadata(PatternKind::TiledReduction, sub.nodes.clone(), n, g)
                .with_detail(Detail::Tiled {
                    partials: partials
                        .iter()
                        .map(|c| c.iter().map(rep).collect())
                        .collect(),
                    final_chain: final_chain.iter().map(rep).collect(),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddg::{BitSet, DdgBuilder};
    use discovery::models::match_subddg;

    /// A chain of `n` adds with distinguishable static ops per position,
    /// fed from outside, last writing output — a linear reduction.
    fn chain(n: usize, op_base: u32, label: &str) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let l = b.intern_label(label, true);
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(l, op_base, 0, 1, 1, 0, vec![]))
            .collect();
        for i in 0..n {
            b.mark_reads_input(nodes[i]);
            if i > 0 {
                b.add_arc(nodes[i - 1], nodes[i]);
            }
        }
        b.mark_writes_output(nodes[n - 1]);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..n),
            SubKind::Assoc {
                label: label.into(),
            },
        );
        (g, sub)
    }

    fn probe_of(cache: &MatchCache, g: &Ddg, sub: &SubDdg) -> Probe {
        cache.probe(g, sub, &MatchBudget::default())
    }

    #[test]
    fn hit_rebuilds_byte_identical_pattern() {
        let cache = MatchCache::new(true);
        let (g1, sub1) = chain(4, 0, "fadd");
        let Probe::Miss(pending) = probe_of(&cache, &g1, &sub1) else {
            panic!("first probe must miss")
        };
        let fresh = match_subddg(&g1, &sub1, &MatchBudget::default());
        assert!(fresh.is_some());
        cache.fulfil(pending, &sub1, &fresh);

        // An op-isomorphic view (different static op ids) from a second
        // graph: must hit and rebuild exactly what a fresh match yields.
        let (g2, sub2) = chain(4, 77, "fadd");
        let Probe::Hit(Some(rebuilt)) = probe_of(&cache, &g2, &sub2) else {
            panic!("isomorphic view must hit")
        };
        let direct = match_subddg(&g2, &sub2, &MatchBudget::default()).unwrap();
        assert_eq!(rebuilt.kind, direct.kind);
        assert_eq!(rebuilt.components, direct.components);
        assert_eq!(rebuilt.op_labels, direct.op_labels);
        assert_eq!(rebuilt.lines, direct.lines);
        assert_eq!(rebuilt.detail, direct.detail);
        assert_eq!(
            rebuilt.nodes.iter().collect::<Vec<_>>(),
            direct.nodes.iter().collect::<Vec<_>>()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn negative_outcomes_are_cached_too() {
        let cache = MatchCache::new(true);
        // A chain with no final output never matches.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let x = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        let y = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        b.mark_reads_input(x);
        b.mark_reads_input(y);
        b.add_arc(x, y);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..2),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let Probe::Miss(pending) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        let outcome = match_subddg(&g, &sub, &MatchBudget::default());
        assert!(outcome.is_none());
        cache.fulfil(pending, &sub, &outcome);
        let Probe::Hit(None) = probe_of(&cache, &g, &sub) else {
            panic!("negative outcome must hit")
        };
    }

    #[test]
    fn different_labels_do_not_collide() {
        let cache = MatchCache::new(true);
        let (g1, sub1) = chain(3, 0, "fadd");
        let Probe::Miss(p1) = probe_of(&cache, &g1, &sub1) else {
            panic!()
        };
        cache.fulfil(
            p1,
            &sub1,
            &match_subddg(&g1, &sub1, &MatchBudget::default()),
        );
        let (g2, sub2) = chain(3, 0, "fmul");
        assert!(
            matches!(probe_of(&cache, &g2, &sub2), Probe::Miss(_)),
            "a different operation label is a different structure"
        );
    }

    #[test]
    fn fused_views_are_uncacheable() {
        let (g, sub) = chain(4, 0, "fadd");
        let fused = SubDdg {
            nodes: sub.nodes.clone(),
            groups: None,
            kind: SubKind::Fused {
                map_part: sub.nodes.clone(),
                other_part: sub.nodes.clone(),
                other_kind: PatternKind::Map,
            },
        };
        let cache = MatchCache::new(true);
        assert!(matches!(probe_of(&cache, &g, &fused), Probe::Uncacheable));
    }

    #[test]
    fn disabled_cache_never_engages() {
        let cache = MatchCache::new(false);
        let (g, sub) = chain(4, 0, "fadd");
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Uncacheable));
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn poisoned_shards_are_cleared_and_recovered() {
        let cache = MatchCache::new(true);
        let (g, sub) = chain(4, 0, "fadd");
        let Probe::Miss(p) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        cache.fulfil(p, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert_eq!(cache.entries(), 1);

        // Panic while holding every shard lock: all shards poisoned.
        for shard in &cache.shards {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("die holding the cache lock");
            }));
            assert!(caught.is_err());
        }

        // The next probe recovers its shard (cleared, so it misses) and
        // the cache keeps working: fulfil + re-probe hits again.
        let Probe::Miss(p) = probe_of(&cache, &g, &sub) else {
            panic!("cleared shard must miss")
        };
        assert!(cache.poison_recoveries() >= 1);
        cache.fulfil(p, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Hit(Some(_))));
        let m = cache.metrics();
        assert_eq!(m.poison_recoveries, cache.poison_recoveries());
        assert!(m.hits >= 1);
    }

    #[test]
    fn loop_and_assoc_views_of_one_shape_do_not_collide() {
        let (g, sub) = chain(4, 0, "fadd");
        let as_loop = SubDdg::grouped(
            sub.nodes.clone(),
            (0..4).map(|i| vec![NodeId(i)]).collect(),
            SubKind::Loop { loop_id: 0 },
        );
        let cache = MatchCache::new(true);
        let Probe::Miss(p1) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        cache.fulfil(p1, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert!(
            matches!(probe_of(&cache, &g, &as_loop), Probe::Miss(_)),
            "different dispatch class must miss"
        );
    }
}
