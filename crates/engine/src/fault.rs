//! Deterministic fault injection (the `fault-inject` test harness).
//!
//! A [`FaultPlan`] names faults by **request id** and, for match jobs,
//! by the job's **ordinal** — its 0-based position in the request's own
//! submission order (`RequestMetrics::match_jobs` at submission time).
//! Both are deterministic per request regardless of worker scheduling,
//! so a plan reproduces the same faults on every run:
//!
//! - [`FaultPlan::panic_match_job`] makes one match job panic inside its
//!   containment, exercising the degrade-to-no-match path;
//! - [`FaultPlan::delay_match_jobs`] stalls every match job of a request,
//!   the lever for deterministic deadline-expiry tests;
//! - [`FaultPlan::trace_fault`] injects a per-step delay into the traced
//!   run via [`trace::TraceFault`], tripping trace-level deadlines.
//!
//! The module exists only under the `fault-inject` feature; production
//! builds compile none of it.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// What one match job should do before matching.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobFault {
    pub panic: bool,
    pub delay: Option<Duration>,
}

impl JobFault {
    /// Executes the fault inside the job (and inside its panic
    /// containment): sleep first, then panic if planned.
    pub fn fire(&self) {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        if self.panic {
            panic!("fault-inject: planned match-job panic");
        }
    }
}

/// A deterministic plan of injected faults, keyed by request id.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    panic_jobs: HashMap<String, HashSet<u64>>,
    job_delays: HashMap<String, Duration>,
    trace_faults: HashMap<String, trace::TraceFault>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The match job with this ordinal in request `id` panics.
    pub fn panic_match_job(mut self, id: &str, ordinal: u64) -> FaultPlan {
        self.panic_jobs
            .entry(id.to_string())
            .or_default()
            .insert(ordinal);
        self
    }

    /// Every match job of request `id` sleeps for `delay` before
    /// matching.
    pub fn delay_match_jobs(mut self, id: &str, delay: Duration) -> FaultPlan {
        self.job_delays.insert(id.to_string(), delay);
        self
    }

    /// The traced run of request `id` sleeps for `delay` every `every`
    /// machine steps.
    pub fn trace_fault(mut self, id: &str, every: u64, delay: Duration) -> FaultPlan {
        self.trace_faults
            .insert(id.to_string(), trace::TraceFault { every, delay });
        self
    }

    pub(crate) fn match_fault(&self, id: &str, ordinal: u64) -> JobFault {
        JobFault {
            panic: self
                .panic_jobs
                .get(id)
                .is_some_and(|s| s.contains(&ordinal)),
            delay: self.job_delays.get(id).copied(),
        }
    }

    pub(crate) fn trace_fault_for(&self, id: &str) -> Option<trace::TraceFault> {
        self.trace_faults.get(id).copied()
    }
}
