//! The fault-injection acceptance batch (`--features fault-inject`).
//!
//! One batch carries (a) a request whose match job panics by plan,
//! (b) a request whose injected match delays blow its deadline, (c) a
//! nonterminating traced program stopped by fuel, and (d) clean
//! requests. The engine must stream one labeled `AnalysisResult` per
//! request — faults contained, degradation flagged — and the clean
//! requests' patterns must stay byte-identical to the sequential
//! finder's.

use repro_engine::{AnalysisRequest, Engine, EngineConfig, EngineError, FaultPlan};
use std::fmt::Write as _;
use std::time::Duration;

/// A canonical dump of every observable finder field (mirrors the
/// parity test's encoding) for byte-identical comparison.
fn canonical(r: &discovery::FinderResult) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "ddg={} simplified={} iters={} matched={} degraded={} cancelled={} exhausted={} faults={}",
        r.ddg_size,
        r.simplified_size,
        r.iterations,
        r.subddgs_matched,
        r.degraded,
        r.cancelled,
        r.matches_exhausted,
        r.match_faults
    )
    .unwrap();
    for f in &r.found {
        writeln!(
            s,
            "it={} rep={} kind={:?} comps={} labels={:?} lines={:?} nodes={:?} detail={:?}",
            f.iteration,
            f.reported,
            f.pattern.kind,
            f.pattern.components,
            f.pattern.op_labels,
            f.pattern.lines,
            f.pattern.nodes.iter().collect::<Vec<_>>(),
            f.pattern.detail
        )
        .unwrap();
    }
    s
}

fn map_request(id: &str, elems: usize) -> AnalysisRequest {
    let src = format!(
        "float in[{elems}];\nfloat out[{elems}];\nvoid main() {{\n  int i;\n  \
         for (i = 0; i < {elems}; i++) {{\n    out[i] = in[i] * 2.0 + 1.0;\n  }}\n  \
         output(out);\n}}\n"
    );
    let program = minc::compile(id, &src).unwrap();
    let input = trace::RunConfig::default()
        .with_f64("in", &(0..elems).map(|i| i as f64).collect::<Vec<_>>());
    AnalysisRequest {
        id: id.to_string(),
        program,
        input,
        config: discovery::FinderConfig::default(),
    }
}

/// `while (i < 1) { i = 0; }` — spins forever; only fuel stops it.
fn nonterminating_request(id: &str) -> AnalysisRequest {
    let src = "int out[1];\nvoid main() {\n  int i;\n  i = 0;\n  \
               while (i < 1) {\n    i = 0;\n  }\n  output(out);\n}\n";
    let program = minc::compile(id, src).unwrap();
    let input = trace::RunConfig::default().with_max_steps(200_000);
    AnalysisRequest {
        id: id.to_string(),
        program,
        input,
        config: discovery::FinderConfig::default(),
    }
}

/// The sequential reference for a request (same trace, same config).
fn sequential(req: &AnalysisRequest) -> discovery::FinderResult {
    let mut cfg = req.input.clone();
    cfg.trace = trace::TraceMode::Full;
    let run = trace::run(&req.program, &cfg).unwrap();
    discovery::find_patterns(&run.ddg.unwrap(), &req.config)
}

#[test]
fn faulted_batch_streams_every_result_and_keeps_clean_requests_identical() {
    let plan = FaultPlan::new()
        // (a) the panicked request: its first match job dies.
        .panic_match_job("panicked", 0)
        // (b) the deadlined request: every match job stalls 50 ms
        // against a 20 ms request deadline.
        .delay_match_jobs("deadlined", Duration::from_millis(50));
    let engine = Engine::with_fault_plan(
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
        plan,
    );

    let mut deadlined = map_request("deadlined", 5);
    deadlined.config.deadline = Some(Duration::from_millis(20));
    let clean_a = map_request("clean-a", 4);
    let clean_b = map_request("clean-b", 6);
    let seq_a = sequential(&clean_a);
    let seq_b = sequential(&clean_b);

    let results = engine.analyze_all(vec![
        map_request("panicked", 4),
        deadlined,
        nonterminating_request("spins"),
        clean_a,
        clean_b,
    ]);

    // Every request streamed a labeled result.
    assert_eq!(
        results.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
        vec!["panicked", "deadlined", "spins", "clean-a", "clean-b"]
    );

    // (a) the planned panic was contained and recorded, and the request
    // still produced an analysis (degraded to no-match on that job).
    let panicked = &results[0];
    let analysis = panicked.outcome.as_ref().expect("contained, not fatal");
    assert_eq!(panicked.metrics.match_faults, 1);
    assert!(panicked.metrics.degraded);
    assert!(analysis.result.degraded);
    assert_eq!(analysis.result.match_faults, 1);

    // (b) the deadline expired mid-analysis: best-so-far, flagged.
    let dl = &results[1];
    let analysis = dl.outcome.as_ref().expect("degraded, not fatal");
    assert!(dl.metrics.deadline_hit);
    assert!(analysis.result.cancelled);
    assert!(analysis.result.degraded);
    assert!(
        dl.metrics.matches_exhausted > 0,
        "stalled jobs must report exhaustion: {:?}",
        dl.metrics
    );

    // (c) the nonterminating program hit its fuel, as a labeled error.
    let spins = &results[2];
    match &spins.outcome {
        Err(EngineError::Trace(e)) => {
            assert!(e.message.contains("step limit"), "{e}");
        }
        other => panic!(
            "expected a trace fuel error, got {:?}",
            other.as_ref().map(|_| "analysis")
        ),
    }

    // (d) the un-faulted requests are byte-identical to the sequential
    // finder.
    for (res, seq) in [(&results[3], &seq_a), (&results[4], &seq_b)] {
        let analysis = res.outcome.as_ref().expect("clean request");
        assert!(!analysis.result.degraded);
        assert_eq!(
            canonical(&analysis.result),
            canonical(seq),
            "clean request {} diverged from the sequential finder",
            res.id
        );
    }

    // Engine-wide counters saw all of it.
    let m = engine.metrics();
    assert_eq!(m.requests_completed, 5);
    assert_eq!(m.match_faults, 1);
    assert_eq!(m.requests_failed, 1);
    assert!(m.requests_degraded >= 2, "{m:?}");
}

#[test]
fn trace_step_delays_trip_the_request_deadline_during_tracing() {
    // (fault × deadline at the trace layer) — the injected per-step
    // delay makes the traced run alone exceed the request deadline; the
    // result is a labeled trace error, not a hang.
    let plan = FaultPlan::new().trace_fault("slow", 4_000, Duration::from_millis(10));
    let engine = Engine::with_fault_plan(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        plan,
    );
    let mut req = nonterminating_request("slow");
    req.input = req.input.with_max_steps(u64::MAX / 2);
    req.config.deadline = Some(Duration::from_millis(30));
    let results = engine.analyze_all(vec![req]);
    assert_eq!(results.len(), 1);
    assert!(results[0].metrics.deadline_hit);
    match &results[0].outcome {
        Err(EngineError::Trace(e)) => assert!(e.message.contains("deadline"), "{e}"),
        _ => panic!("expected a trace deadline error"),
    }
}

#[test]
fn planned_panics_do_not_poison_the_engine_for_later_batches() {
    // Job 0 is the request's only job: the panicked sub-DDG degrades to
    // no-match, so no subtraction/fusion produces a second iteration.
    let plan = FaultPlan::new().panic_match_job("victim", 0);
    let engine = Engine::with_fault_plan(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        plan,
    );
    let first = engine.analyze_all(vec![map_request("victim", 4)]);
    assert!(first[0].outcome.is_ok());
    assert_eq!(first[0].metrics.match_faults, 1);

    // A later clean batch on the same engine (same pool, same cache)
    // behaves exactly like the sequential finder.
    let clean = map_request("after", 4);
    let seq = sequential(&clean);
    let second = engine.analyze_all(vec![clean]);
    let analysis = second[0].outcome.as_ref().unwrap();
    assert!(!analysis.result.degraded);
    assert_eq!(canonical(&analysis.result), canonical(&seq));
    // The panic was contained inside the job itself (the pool-level
    // containment never saw it), so it shows up as a match fault.
    assert_eq!(engine.metrics().match_faults, 1);
}

#[test]
fn killed_match_workers_are_respawned_without_losing_work() {
    let engine = Engine::with_fault_plan(
        EngineConfig {
            workers: 3,
            max_concurrent_requests: 1,
            ..EngineConfig::default()
        },
        FaultPlan::new(),
    );
    // Warm request proves the pool works at full strength.
    let first = engine.analyze_all(vec![map_request("warm", 4)]);
    assert!(first[0].outcome.is_ok());

    // Kill two of the three workers at their next safe point, then give
    // them a moment to die. The injected exit only fires between jobs,
    // so nothing in flight is lost.
    engine.inject_worker_exit(0);
    engine.inject_worker_exit(2);
    std::thread::sleep(Duration::from_millis(50));

    // The engine still completes requests on the surviving worker.
    let wounded = engine.analyze_all(vec![map_request("wounded", 5)]);
    assert!(wounded[0].outcome.is_ok(), "one worker suffices");

    // The healing sweep replaces exactly the dead slots and counts them.
    let respawned = engine.heal();
    assert_eq!(respawned, 2, "both killed workers replaced");
    assert_eq!(engine.heal(), 0, "idempotent once healthy");
    let m = engine.metrics();
    assert_eq!(m.workers_respawned, 2);
    assert_eq!(m.workers, 3);

    // Full-strength service continues, byte-identical to sequential.
    let clean = map_request("healed", 6);
    let seq = sequential(&clean);
    let after = engine.analyze_all(vec![clean]);
    let analysis = after[0].outcome.as_ref().unwrap();
    assert_eq!(canonical(&analysis.result), canonical(&seq));
}
