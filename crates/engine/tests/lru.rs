//! Engine-level LRU cache behavior: a thrashing capacity-1 cache must
//! change throughput characteristics only — never results. An uncached
//! engine is the referee: the same batch run cache-less, with an ample
//! cache, and with a capacity-1 cache yields byte-identical patterns,
//! and the per-request counters reconcile with the engine totals.

use repro_engine::{AnalysisRequest, Engine, EngineConfig};

/// A map-shaped request over `elems` elements; distinct `elems` values
/// produce structurally distinct sub-DDGs (different cache keys).
fn map_request(id: &str, elems: usize) -> AnalysisRequest {
    let src = format!(
        "float in[{elems}];\nfloat out[{elems}];\nvoid main() {{\n  int i;\n  \
         for (i = 0; i < {elems}; i++) {{\n    out[i] = in[i] * 2.0 + 1.0;\n  }}\n  \
         output(out);\n}}\n"
    );
    let program = minc::compile(id, &src).unwrap();
    let input = trace::RunConfig::default()
        .with_f64("in", &(0..elems).map(|i| i as f64).collect::<Vec<_>>());
    AnalysisRequest {
        id: id.to_string(),
        program,
        input,
        config: discovery::FinderConfig::default(),
    }
}

/// Alternating shapes: every probe of one shape follows an insert of
/// the other, so a capacity-1 cache evicts on every fill.
fn alternating_batch() -> Vec<AnalysisRequest> {
    (0..6)
        .map(|i| map_request(&format!("r{i}"), if i % 2 == 0 { 4 } else { 6 }))
        .collect()
}

fn engine_with(cache_capacity: usize, use_cache: bool) -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        max_concurrent_requests: 1, // deterministic probe order
        use_cache,
        cache_capacity,
        ..EngineConfig::default()
    })
}

/// The comparable bytes of a finder result (pattern structure and
/// source metadata; timings excluded).
fn fingerprint(results: &[repro_engine::AnalysisResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let a = r.outcome.as_ref().expect("analysis succeeds");
            a.result
                .found
                .iter()
                .map(|f| {
                    format!(
                        "{}:{:?}:{:?}:{:?}:{}:{}",
                        r.id,
                        f.pattern.kind,
                        f.pattern.detail,
                        f.pattern.lines,
                        f.iteration,
                        f.reported
                    )
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

#[test]
fn thrashing_cache_is_a_pure_performance_knob() {
    let uncached = engine_with(0, false);
    let ample = engine_with(4096, true);
    let tiny = engine_with(1, true);

    let referee = fingerprint(&uncached.analyze_all(alternating_batch()));
    let ample_fp = fingerprint(&ample.analyze_all(alternating_batch()));
    let tiny_fp = fingerprint(&tiny.analyze_all(alternating_batch()));
    assert_eq!(referee, ample_fp, "ample cache must not change results");
    assert_eq!(referee, tiny_fp, "thrashing cache must not change results");

    // The ample cache memoizes across the repeats; the capacity-1 cache
    // actually evicts; neither engine ever exceeds its bound.
    let ample_m = ample.metrics();
    assert!(ample_m.cache_hits > 0, "{ample_m:?}");
    assert_eq!(ample_m.cache_evictions, 0, "{ample_m:?}");
    let tiny_m = tiny.metrics();
    assert!(tiny_m.cache_evictions > 0, "{tiny_m:?}");
    assert!(tiny_m.cache_entries <= 1, "{tiny_m:?}");
    assert_eq!(tiny_m.cache_capacity, 1);
    assert_eq!(uncached.metrics().cache_hits, 0);
}

#[test]
fn cache_counters_reconcile_with_request_counts() {
    let engine = engine_with(1, true);
    let results = engine.analyze_all(alternating_batch());

    // Per request: every match job either probed the cache (hit or
    // miss) or bypassed it — no job is unaccounted for.
    let (mut jobs, mut hits, mut misses, mut bypassed) = (0, 0, 0, 0);
    for r in &results {
        assert_eq!(
            r.metrics.cache_hits + r.metrics.cache_misses + r.metrics.cache_bypassed,
            r.metrics.match_jobs,
            "request {} leaks probes: {:?}",
            r.id,
            r.metrics
        );
        jobs += r.metrics.match_jobs;
        hits += r.metrics.cache_hits;
        misses += r.metrics.cache_misses;
        bypassed += r.metrics.cache_bypassed;
    }
    assert!(jobs > 0);

    // Engine totals equal the per-request sums (one coordinator, so no
    // double counting), and evictions never exceed fills.
    let m = engine.metrics();
    assert_eq!(m.cache_hits, hits);
    assert_eq!(m.cache_misses, misses);
    assert!(m.cache_evictions <= misses - bypassed.min(misses));
    assert!(
        m.cache_evictions + m.cache_entries as u64 <= misses,
        "every resident or evicted entry came from a missed probe: {m:?}"
    );
}
