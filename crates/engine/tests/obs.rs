//! Observability must be a pure observer: enabling span tracing cannot
//! change a single byte of the analysis output, and the trace it emits
//! must be well-formed Chrome trace JSON with balanced begin/end pairs.
//!
//! One `#[test]` only — the obs enabled flag and event buffers are
//! process-global, and a separate integration test file is a separate
//! process, so this file owns the instrumented state for its process.

use discovery::{FinderConfig, FinderResult};
use repro_engine::{AnalysisRequest, Engine, EngineConfig};
use starbench::Version;
use std::fmt::Write as _;

/// Every observable field of a finder result, canonically serialized.
fn canonical(r: &FinderResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ddg={} simplified={} iterations={} matched={} degraded={} cancelled={} \
         exhausted={} faults={}",
        r.ddg_size,
        r.simplified_size,
        r.iterations,
        r.subddgs_matched,
        r.degraded,
        r.cancelled,
        r.matches_exhausted,
        r.match_faults
    );
    for f in &r.found {
        let p = &f.pattern;
        let _ = writeln!(
            out,
            "it={} reported={} kind={:?} comps={} nodes={:?} labels={:?} lines={:?} \
             loops={:?} detail={:?}",
            f.iteration,
            f.reported,
            p.kind,
            p.components,
            p.nodes.iter().collect::<Vec<_>>(),
            p.op_labels,
            p.lines,
            p.loops,
            p.detail,
        );
    }
    out
}

fn run_batch(names: &[&str]) -> Vec<String> {
    let mut requests = Vec::new();
    for name in names {
        let bench = starbench::benchmark(name).unwrap();
        for version in Version::BOTH {
            requests.push(AnalysisRequest {
                id: format!("{name}-{}", version.name()),
                program: bench.program(version),
                input: (bench.analysis_input)(),
                config: FinderConfig::default(),
            });
        }
    }
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    engine
        .analyze_all(requests)
        .iter()
        .map(|r| {
            let analysis = r
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", r.id));
            canonical(&analysis.result)
        })
        .collect()
}

#[test]
fn tracing_is_invisible_to_results_and_emits_a_valid_chrome_trace() {
    let names = ["rgbyuv", "streamcluster"];

    // Reference run with observability off (the process default).
    assert!(!obs::enabled());
    let baseline = run_batch(&names);

    // Identical batch with span tracing on.
    obs::enable();
    let instrumented = run_batch(&names);
    obs::disable();
    assert_eq!(
        instrumented, baseline,
        "enabling observability changed the pattern reports"
    );

    // The emitted trace parses and every span is properly closed.
    let threads = obs::take_events();
    let doc = obs::chrome_trace_json(&threads);
    let summary = obs::validate_chrome_trace(&doc).expect("trace must validate");
    assert!(summary.events > 0, "instrumented run emitted no events");
    assert_eq!(
        summary.begins, summary.ends,
        "unbalanced begin/end events: {summary:?}"
    );
    assert!(summary.threads >= 2, "expected engine worker tracks");

    // The pipeline's layers all show up: engine scheduling, finder
    // phases, per-sub-DDG matching, and the trace VM.
    for name in [
        "engine.request",
        "pool.job",
        "trace.run",
        "vm.slice",
        "finder.simplify",
        "finder.decompose",
        "finder.match",
        "finder.match_subddg",
        "finder.combine",
        "finder.merge",
    ] {
        assert!(
            doc.contains(&format!("\"name\":\"{name}\"")),
            "trace is missing {name:?} spans"
        );
    }

    // The CP solver's spans and counters (the solver kernel is not on
    // the engine's matching path, so drive a tiny search directly).
    obs::enable();
    let mut search = cp::search::search_with(|store| {
        let a = store.new_var(0, 2);
        let b = store.new_var(0, 2);
        vec![Box::new(cp::NotEqual::new(a, b)) as Box<dyn cp::Propagator>]
    });
    assert!(matches!(search.solve_first(), cp::Outcome::Solution { .. }));
    obs::disable();
    let cp_doc = obs::chrome_trace_json(&obs::take_events());
    let cp_summary = obs::validate_chrome_trace(&cp_doc).expect("cp trace must validate");
    assert!(cp_summary.begins > 0);
    assert!(
        cp_doc.contains("\"name\":\"cp.search\""),
        "trace is missing \"cp.search\" spans"
    );

    // Metrics made it into the registry alongside the spans.
    let mut report = obs::ObsReport::snapshot();
    report.meta("experiment", "engine-obs-test");
    let json = report.to_json();
    obs::validate_metrics_json(&json, &[]).expect("metrics report must validate");
    for counter in ["trace.steps", "cp.decisions"] {
        assert!(
            json.contains(counter),
            "metrics report is missing the {counter:?} counter"
        );
    }
}
