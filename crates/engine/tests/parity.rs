//! The engine's determinism contract: with any worker count and the
//! match cache on, a batch analysis is **byte-identical** to the
//! sequential `discovery::find_patterns` — same patterns, same fields,
//! same iteration numbers, same match order.
//!
//! Both tests drive Starbench benchmarks (both versions) end-to-end on
//! their analysis-scale inputs: a quick two-benchmark check, then the
//! whole suite.

use discovery::{find_patterns, FinderConfig, FinderResult};
use repro_engine::{AnalysisRequest, Engine, EngineConfig};
use starbench::{all_benchmarks, Version};
use std::fmt::Write as _;

/// Every observable field of a finder result, canonically serialized.
fn canonical(r: &FinderResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ddg={} simplified={} iterations={} matched={} degraded={} cancelled={} \
         exhausted={} faults={}",
        r.ddg_size,
        r.simplified_size,
        r.iterations,
        r.subddgs_matched,
        r.degraded,
        r.cancelled,
        r.matches_exhausted,
        r.match_faults
    );
    for f in &r.found {
        let p = &f.pattern;
        let _ = writeln!(
            out,
            "it={} reported={} kind={:?} comps={} nodes={:?} labels={:?} lines={:?} \
             loops={:?} detail={:?}",
            f.iteration,
            f.reported,
            p.kind,
            p.components,
            p.nodes.iter().collect::<Vec<_>>(),
            p.op_labels,
            p.lines,
            p.loops,
            p.detail,
        );
    }
    out
}

fn assert_parity(names: &[&str]) {
    assert_parity_with(names, FinderConfig::default());
}

fn assert_parity_with(names: &[&str], config: FinderConfig) {
    // Sequential reference, in submission order.
    let mut expected = Vec::new();
    let mut requests = Vec::new();
    for name in names {
        let bench = starbench::benchmark(name).unwrap();
        for version in Version::BOTH {
            let program = bench.program(version);
            let input = (bench.analysis_input)();
            let mut traced = input.clone();
            traced.trace = trace::TraceMode::Full;
            let run = trace::run(&program, &traced).expect("trace");
            expected.push(canonical(&find_patterns(&run.ddg.unwrap(), &config)));
            requests.push(AnalysisRequest {
                id: format!("{name}-{}", version.name()),
                program,
                input,
                config: config.clone(),
            });
        }
    }

    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let results = engine.analyze_all(requests);
    assert_eq!(results.len(), expected.len());
    for (result, expected) in results.iter().zip(&expected) {
        let analysis = result
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: trace failed in engine: {e}", result.id));
        assert_eq!(
            &canonical(&analysis.result),
            expected,
            "{}: engine result differs from sequential finder",
            result.id
        );
    }
}

#[test]
fn engine_matches_sequential_finder_on_two_benchmarks() {
    assert_parity(&["rgbyuv", "streamcluster"]);
}

#[test]
fn engine_matches_sequential_finder_on_all_benchmarks() {
    let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
    assert_parity(&names);
}

#[test]
fn an_unexpired_deadline_does_not_perturb_results() {
    // A deadline with hours of slack must leave every observable field —
    // including the degradation flags — byte-identical to the
    // deadline-free sequential finder's view of the same config.
    assert_parity_with(
        &["rgbyuv"],
        FinderConfig {
            deadline: Some(std::time::Duration::from_secs(3600)),
            ..FinderConfig::default()
        },
    );
}
