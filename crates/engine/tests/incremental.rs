//! Incremental correctness (DESIGN.md §18): replaying an edited
//! program against a warmed query store must be **byte-identical** to
//! analyzing it cold, and invalidation must be precise — editing one
//! loop must not recompute the other loop's match queries.
//!
//! The edit generator is a property test: each case picks a Starbench
//! benchmark, a version, and a random fractional digit of a float
//! literal to mutate — a single-loop constant edit that always
//! re-compiles, sometimes re-traces to the same DDG (the
//! exec-fingerprint fast path) and sometimes changes data-dependent
//! behavior entirely. Either way the contract is the same: the
//! incremental answer equals the cold answer, byte for byte — down to
//! identical trace errors when an edit pushes an index out of range.

use proptest::prelude::*;
use repro_engine::{AnalysisRequest, Engine, EngineConfig, EngineError};
use repro_query::{pattern_signature, QueryConfig, QueryDb};
use starbench::{all_benchmarks, Benchmark, Version};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

fn engine_on(db: &Arc<QueryDb>) -> Engine {
    Engine::with_query(
        EngineConfig {
            workers: 2,
            max_concurrent_requests: 1,
            ..EngineConfig::default()
        },
        Arc::clone(db),
    )
}

fn fresh() -> (Arc<QueryDb>, Engine) {
    let db = Arc::new(QueryDb::full(QueryConfig::default()));
    let engine = engine_on(&db);
    (db, engine)
}

/// Byte offsets (per file) of fractional digits of float literals — a
/// digit directly following `<digit>.`. Mutating one is always a
/// valid, same-length, single-constant edit (loop bounds are integer
/// literals and stay untouched).
fn editable_digits(src: &str) -> Vec<usize> {
    let b = src.as_bytes();
    (2..b.len())
        .filter(|&i| b[i - 1] == b'.' && b[i].is_ascii_digit() && b[i - 2].is_ascii_digit())
        .collect()
}

/// Fallback for all-integer benchmarks (md5): the *last* digit of a
/// multi-digit integer literal. The edit changes the constant by at
/// most ±9, so even a mutated loop bound stays the same order of
/// magnitude; if it pushes an index out of range, cold and warm must
/// agree on the error.
fn editable_int_digits(src: &str) -> Vec<usize> {
    let b = src.as_bytes();
    (1..b.len())
        .filter(|&i| {
            b[i].is_ascii_digit()
                && b[i - 1].is_ascii_digit()
                && b.get(i + 1)
                    .is_none_or(|&c| !c.is_ascii_digit() && c != b'.')
        })
        .collect()
}

/// One chosen single-constant edit applied to one file of a benchmark.
/// `site` and `delta` come from the proptest strategy; the same pair
/// always produces the same edit (failures are reproducible).
fn edited_sources(bench: &Benchmark, v: Version, site: u64, delta: u8) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = bench
        .files(v)
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    // Flatten every editable digit across files, then pick one.
    let mut sites: Vec<(usize, usize)> = out
        .iter()
        .enumerate()
        .flat_map(|(f, (_, s))| editable_digits(s).into_iter().map(move |p| (f, p)))
        .collect();
    if sites.is_empty() {
        sites = out
            .iter()
            .enumerate()
            .flat_map(|(f, (_, s))| editable_int_digits(s).into_iter().map(move |p| (f, p)))
            .collect();
    }
    assert!(
        !sites.is_empty(),
        "{}: no float literal to edit",
        bench.name
    );
    let (file, pos) = sites[(site % sites.len() as u64) as usize];
    let mut bytes = std::mem::take(&mut out[file].1).into_bytes();
    bytes[pos] = b'0' + (bytes[pos] - b'0' + 1 + delta % 9) % 10;
    out[file].1 = String::from_utf8(bytes).expect("digit splice keeps UTF-8");
    out
}

fn compile(name: &str, files: &[(String, String)]) -> repro_ir::Program {
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    minc::compile_files(name, &refs).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn request(id: &str, bench: &Benchmark, program: repro_ir::Program) -> AnalysisRequest {
    AnalysisRequest {
        id: id.to_string(),
        program,
        input: (bench.analysis_input)(),
        config: Default::default(),
    }
}

/// One warm engine per benchmark-version, seeded with the unedited
/// program and shared across cases — exactly how a daemon's store
/// accumulates history across many edits of the same program.
fn warm_engine(bench: &Benchmark, v: Version) -> Arc<Mutex<Engine>> {
    static WARM: OnceLock<Mutex<HashMap<String, Arc<Mutex<Engine>>>>> = OnceLock::new();
    let name = format!("{}-{}", bench.name, v.name());
    let map = WARM.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    Arc::clone(map.entry(name.clone()).or_insert_with(|| {
        let (_db, engine) = fresh();
        let unedited: Vec<(String, String)> = bench
            .files(v)
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect();
        let seed = engine.analyze_one(request("seed", bench, compile(&name, &unedited)));
        seed.outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} seed: {e}"));
        Arc::new(Mutex::new(engine))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The property: for random single-constant edits over the whole
    /// corpus, incremental ≡ cold, byte for byte. Trace errors (an
    /// edit can push data-dependent indices out of range) must agree
    /// too.
    #[test]
    fn random_single_loop_edits_replay_byte_identically(
        bench_idx in 0usize..8,
        seq in any::<bool>(),
        site in any::<u64>(),
        delta in 0u8..9,
    ) {
        let bench = &all_benchmarks()[bench_idx];
        let v = if seq { Version::Seq } else { Version::Pthreads };
        let name = format!("{}-{}", bench.name, v.name());

        let files = edited_sources(bench, v, site, delta);
        let program = compile(&name, &files);

        let (_cold_db, cold_engine) = fresh();
        let cold = cold_engine.analyze_one(request("cold", bench, program.clone()));
        let warm = warm_engine(bench, v);
        let warm_res = warm.lock().unwrap().analyze_one(request("warm", bench, program));

        match (&cold.outcome, &warm_res.outcome) {
            (Ok(c), Ok(w)) => {
                prop_assert_eq!(
                    pattern_signature(&c.result),
                    pattern_signature(&w.result),
                    "{} site {} delta {}: incremental result differs from cold",
                    name, site, delta
                );
            }
            (Err(EngineError::Trace(c)), Err(EngineError::Trace(w))) => {
                prop_assert_eq!(
                    c.to_string(),
                    w.to_string(),
                    "{} site {} delta {}: divergent trace errors",
                    name, site, delta
                );
            }
            (c, w) => prop_assert!(
                false,
                "{} site {} delta {}: cold {:?} vs warm {:?}",
                name, site, delta,
                c.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                w.as_ref().map(|_| "ok").map_err(|e| e.to_string())
            ),
        }
    }
}

/// Two independent loops; edits target loop A only.
const TWO_LOOPS: &str = "float a_in[8];\nfloat a_out[8];\nfloat b_in[8];\nfloat b_out[8];\n\
     void main() {\n  int i;\n  int j;\n  \
     for (i = 0; i < 8; i++) {\n    a_out[i] = a_in[i] * 2.0 + 1.0;\n  }\n  \
     for (j = 0; j < 8; j++) {\n    b_out[j] = b_in[j] * 3.0;\n  }\n  \
     output(a_out);\n  output(b_out);\n}\n";

fn two_loop_request(id: &str, src: &str) -> AnalysisRequest {
    AnalysisRequest {
        id: id.to_string(),
        program: minc::compile_files("two-loops", &[("two_loops.c", src)]).expect("compiles"),
        input: trace::RunConfig::default(),
        config: Default::default(),
    }
}

/// Invalidation precision, layer by layer:
///
/// 1. A *value* edit to loop A re-keys the program but not the
///    execution stream — the exec-fingerprint probe replays the whole
///    find phase. Nothing is recomputed for either loop: zero new
///    match-cache traffic.
/// 2. A *structural* edit to loop A (`+` → `-`) changes the DDG, so
///    the find stage reruns — but loop B's sub-DDG is structurally
///    unchanged and must be answered by the match cache, not
///    recomputed. Only loop A's shape misses.
#[test]
fn editing_loop_a_does_not_recompute_loop_b() {
    let (db, engine) = fresh();

    let base = engine.analyze_one(two_loop_request("base", TWO_LOOPS));
    base.outcome.as_ref().expect("base analysis");
    assert!(
        base.metrics.cache_misses >= 2,
        "two loops, two match queries"
    );

    // 1. Value edit: loop A's additive constant changes.
    let value_edit = TWO_LOOPS.replace("+ 1.0", "+ 5.0");
    assert_ne!(value_edit, TWO_LOOPS);
    let res = engine.analyze_one(two_loop_request("value-edit", &value_edit));
    res.outcome.as_ref().expect("value edit analysis");
    assert!(
        res.metrics.query_exec_hit,
        "constant edit must resolve through the exec fingerprint: {:?}",
        res.metrics
    );
    assert_eq!(
        (res.metrics.cache_hits, res.metrics.cache_misses),
        (0, 0),
        "a replayed find phase issues no match queries at all"
    );

    // 2. Structural edit: loop A's `+` becomes `-`; its DDG labels —
    // and only its — change.
    let stats_before = db.stats();
    let struct_edit = TWO_LOOPS.replace("* 2.0 + 1.0", "* 2.0 - 1.0");
    assert_ne!(struct_edit, TWO_LOOPS);
    let res = engine.analyze_one(two_loop_request("struct-edit", &struct_edit));
    res.outcome.as_ref().expect("struct edit analysis");
    assert!(
        !res.metrics.query_find_hit,
        "a structural edit must rerun the find stage"
    );
    assert!(
        res.metrics.cache_hits >= 1,
        "loop B's unchanged sub-DDG must be a match-cache hit: {:?}",
        res.metrics
    );
    assert!(
        res.metrics.cache_misses < base.metrics.cache_misses,
        "only the edited loop may miss the match cache (cold missed {}, edit missed {})",
        base.metrics.cache_misses,
        res.metrics.cache_misses,
    );
    // The sub-DDG store saw only the *new* DDG's tasks — loop B's
    // cached extraction for the old DDG was not invalidated.
    let stats_after = db.stats();
    assert_eq!(
        stats_after.subddg.invalidations, stats_before.subddg.invalidations,
        "an edit must never invalidate another program's cached stages"
    );
}
