//! Property tests pinning the log-bucketed quantile estimator against
//! an exact sorted reference: the estimate is the upper bound of the
//! power-of-two bucket holding the true quantile, so it is never below
//! exact and never more than one bucket width (2×) above it.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fresh histogram per case — the registry is process-global, so each
/// case gets its own name.
fn fresh_histogram() -> obs::Histogram {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    obs::histogram(&format!("quantile_prop.case{n}"))
}

/// The exact quantile the estimator targets: the rank-`⌈qN⌉` sample of
/// the ascending sort.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimate_within_one_bucket_width_of_exact(
        samples in prop::collection::vec(1u64..(1u64 << 40), 1..400),
    ) {
        let h = fresh_histogram();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile_ns(q);
            prop_assert!(
                est >= exact,
                "q={q}: estimate {est} below exact {exact} (upper bound property)"
            );
            prop_assert!(
                est <= exact.saturating_mul(2),
                "q={q}: estimate {est} more than one bucket above exact {exact}"
            );
        }
    }

    #[test]
    fn estimate_is_monotone_in_q(
        samples in prop::collection::vec(1u64..(1u64 << 32), 1..200),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = fresh_histogram();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile_ns(lo) <= h.quantile_ns(hi));
    }
}

#[test]
fn zero_samples_and_empty_histograms_are_defined() {
    let h = fresh_histogram();
    assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
    h.record_ns(0);
    // ns=0 lands in bucket 0, whose upper bound is 1 ns.
    assert_eq!(h.quantile_ns(0.5), 1);
}
