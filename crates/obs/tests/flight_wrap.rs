//! Flight-recorder wraparound: the ring retains exactly the last
//! `capacity()` events, oldest evicted first, with dense ordered
//! sequence numbers. Lives in its own integration binary because the
//! ring is process-global.

#[test]
fn wraparound_keeps_exactly_the_newest_events() {
    assert!(
        obs::flight::configure(160),
        "hint must land before first use"
    );
    let cap = obs::flight::capacity();
    assert_eq!(cap, 160, "160 divides the stripe count evenly");

    let total = 3 * cap as u64 + 17;
    for i in 0..total {
        obs::flight::event("wrap", "rid", i.to_string());
    }
    assert_eq!(obs::flight::recorded(), total);

    let snap = obs::flight::snapshot();
    assert_eq!(snap.len(), cap, "ring is full: exactly capacity survive");
    for (offset, e) in snap.iter().enumerate() {
        let want = total - cap as u64 + offset as u64;
        assert_eq!(e.seq, want, "dense, oldest-first, newest retained");
        assert_eq!(e.detail, want.to_string(), "payload matches its seq");
        assert_eq!(e.kind, "wrap");
    }

    // Timestamps never go backwards along the seq order (same monotonic
    // clock as spans).
    for pair in snap.windows(2) {
        assert!(pair[0].ts_ns <= pair[1].ts_ns);
    }

    // A later configure() is a no-op once the ring exists.
    assert!(!obs::flight::configure(8));
    assert_eq!(obs::flight::capacity(), cap);
}
