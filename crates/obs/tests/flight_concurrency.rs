//! Flight-recorder concurrency: many writer threads plus a live
//! snapshotter, asserting no torn events (every field of an event
//! belongs to the same logical write) and exact oldest-first retention
//! after the dust settles. Own binary: the ring is process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 1500;

static KINDS: [&str; WRITERS] = ["w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"];

/// An event is torn if its fields disagree: writer `t` always records
/// kind `wT`, request_id `rT`, detail `T:i`.
fn assert_untorn(e: &obs::FlightEvent) {
    let t: usize = e.kind.strip_prefix('w').unwrap().parse().unwrap();
    assert_eq!(e.request_id, format!("r{t}"), "torn event: {e:?}");
    assert!(e.detail.starts_with(&format!("{t}:")), "torn event: {e:?}");
}

#[test]
fn concurrent_writers_never_tear_and_evict_oldest_first() {
    obs::flight::configure(512);
    let cap = obs::flight::capacity() as u64;

    let stop = Arc::new(AtomicBool::new(false));
    // A reader snapshotting while writers are mid-flight: every event it
    // sees must be internally consistent and seq-sorted.
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = obs::flight::snapshot();
                for e in &snap {
                    assert_untorn(e);
                }
                for pair in snap.windows(2) {
                    assert!(pair[0].seq < pair[1].seq, "snapshot sorted, no dup seq");
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            std::thread::spawn(move || {
                let rid = format!("r{t}");
                for i in 0..PER_WRITER {
                    obs::flight::event(KINDS[t], &rid, format!("{t}:{i}"));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0, "reader actually raced writers");

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(obs::flight::recorded(), total);
    let snap = obs::flight::snapshot();
    assert_eq!(snap.len() as u64, cap);
    // Exact global oldest-first eviction: the survivors are precisely
    // the last `cap` sequence numbers, in order.
    for (offset, e) in snap.iter().enumerate() {
        assert_eq!(e.seq, total - cap + offset as u64);
        assert_untorn(e);
    }
}
