//! Exporters and validators: Chrome trace-event JSON and the flat
//! metrics JSON written by [`crate::ObsReport`].
//!
//! The trace format is the Chrome `traceEvents` JSON loadable in
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: `"B"`/
//! `"E"` duration events and `"i"` instants with microsecond
//! timestamps, plus `"M"` metadata events naming each thread track.

use crate::json::{parse, Json};
use crate::span::{ArgValue, EventKind, ThreadEvents};
use serde::{ser_key, ser_str};
use std::io::Write as _;
use std::path::Path;

const PID: u32 = 1;

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    if args.is_empty() {
        return;
    }
    out.push(',');
    ser_key(out, "args");
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        ser_key(out, k);
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::I64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(x) if x.is_finite() => out.push_str(&x.to_string()),
            ArgValue::F64(_) => out.push_str("null"),
            ArgValue::Str(s) => ser_str(out, s),
            ArgValue::Static(s) => ser_str(out, s),
        }
    }
    out.push('}');
}

/// Renders drained events ([`crate::take_events`]) as a Chrome
/// trace-event JSON document.
pub fn chrome_trace_json(threads: &[ThreadEvents]) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push('{');
    ser_key(&mut out, "traceEvents");
    out.push('[');
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(s);
    };
    // Process + thread name metadata, so Perfetto shows named tracks.
    let mut meta = String::new();
    meta.push_str(&format!(
        r#"{{"ph":"M","name":"process_name","pid":{PID},"tid":0,"args":{{"name":"modernize"}}}}"#
    ));
    emit(&meta, &mut out);
    for t in threads {
        let mut m = String::new();
        m.push_str(&format!(
            r#"{{"ph":"M","name":"thread_name","pid":{PID},"tid":{},"args":{{"name":"#,
            t.tid
        ));
        ser_str(&mut m, &t.name);
        m.push_str("}}");
        emit(&m, &mut out);
    }
    for t in threads {
        for e in &t.events {
            let ph = match e.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let mut ev = String::new();
            ev.push('{');
            ser_key(&mut ev, "name");
            ser_str(&mut ev, e.name);
            ev.push_str(&format!(
                r#","cat":"obs","ph":"{ph}","pid":{PID},"tid":{},"ts":{}"#,
                t.tid,
                // Chrome timestamps are fractional microseconds.
                e.ts_ns as f64 / 1e3
            ));
            if e.kind == EventKind::Instant {
                ev.push_str(r#","s":"t""#);
            }
            push_args(&mut ev, &e.args);
            ev.push('}');
            emit(&ev, &mut out);
        }
    }
    out.push_str("],");
    ser_key(&mut out, "displayTimeUnit");
    out.push_str("\"ms\"}");
    out
}

/// Renders and writes a Chrome trace to `path`.
pub fn write_chrome_trace(path: &Path, threads: &[ThreadEvents]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(threads).as_bytes())
}

/// What [`validate_chrome_trace`] measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSummary {
    pub events: usize,
    pub begins: usize,
    pub ends: usize,
    pub instants: usize,
    /// Threads with at least one non-metadata event.
    pub threads: usize,
}

/// Parses a Chrome trace document and checks its invariants: a
/// `traceEvents` array whose `"B"`/`"E"` events nest properly (matching
/// names, never negative depth, fully closed) *per thread*. Returns
/// event counts for the caller's own assertions.
pub fn validate_chrome_trace(doc: &str) -> Result<TraceSummary, String> {
    let v = parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary::default();
    // tid -> stack of open span names.
    let mut stacks: Vec<(f64, Vec<String>)> = Vec::new();
    let mut tids_with_events: Vec<f64> = Vec::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event without ph")?;
        if ph == "M" {
            continue;
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or("event without tid")?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without name")?
            .to_string();
        e.get("ts")
            .and_then(Json::as_f64)
            .ok_or("event without ts")?;
        summary.events += 1;
        if !tids_with_events.contains(&tid) {
            tids_with_events.push(tid);
        }
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ph {
            "B" => {
                summary.begins += 1;
                stack.push(name);
            }
            "E" => {
                summary.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "tid {tid}: end of {name:?} closes open span {open:?}"
                        ))
                    }
                    None => return Err(format!("tid {tid}: end of {name:?} with no open span")),
                }
            }
            "i" => summary.instants += 1,
            other => return Err(format!("unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) left open: {stack:?}",
                stack.len()
            ));
        }
    }
    summary.threads = tids_with_events.len();
    Ok(summary)
}

/// Renders a [`crate::MetricsSnapshot`] in Prometheus text exposition
/// format (version 0.0.4): counters become `modernize_<name>_total`,
/// gauges `modernize_<name>`, and histograms summary-style quantile
/// series in seconds. Metric names are sanitized (`.` and other
/// non-identifier bytes → `_`).
pub fn prometheus_text(snap: &crate::MetricsSnapshot) -> String {
    fn sanitize(name: &str) -> String {
        let mut out: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if out.starts_with(|c: char| c.is_ascii_digit()) {
            out.insert(0, '_');
        }
        format!("modernize_{out}")
    }
    fn num(v: f64) -> String {
        if v.is_finite() {
            v.to_string()
        } else {
            "NaN".to_string()
        }
    }
    let mut out = String::with_capacity(4096);
    for c in &snap.counters {
        let n = sanitize(&c.name);
        out.push_str(&format!("# TYPE {n}_total counter\n"));
        out.push_str(&format!("{n}_total {}\n", c.value));
    }
    for g in &snap.gauges {
        let n = sanitize(&g.name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("{n} {}\n", num(g.value)));
    }
    for h in &snap.histograms {
        let n = sanitize(&h.name);
        out.push_str(&format!("# TYPE {n}_seconds summary\n"));
        for (q, ms) in [
            ("0.5", h.p50_ms),
            ("0.9", h.p90_ms),
            ("0.99", h.p99_ms),
            ("0.999", h.p999_ms),
        ] {
            out.push_str(&format!(
                "{n}_seconds{{quantile=\"{q}\"}} {}\n",
                num(ms / 1e3)
            ));
        }
        out.push_str(&format!("{n}_seconds_sum {}\n", num(h.sum_ms / 1e3)));
        out.push_str(&format!("{n}_seconds_count {}\n", h.count));
    }
    out
}

/// What [`validate_prometheus_text`] measured.
#[derive(Clone, Debug, Default)]
pub struct PromSummary {
    /// Names of the `# TYPE` family declarations, in document order.
    pub families: Vec<String>,
    /// Sample lines (non-comment, non-blank).
    pub samples: usize,
}

/// Checks a Prometheus text exposition: every sample line must be
/// `name[{labels}] value` with a valid metric name and a parseable
/// value, and every sample's family must have a `# TYPE` declaration.
pub fn validate_prometheus_text(doc: &str) -> Result<PromSummary, String> {
    let mut summary = PromSummary::default();
    let mut declared: Vec<&str> = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return Err(format!("line {}: TYPE without a name", lineno + 1));
            }
            declared.push(name);
            summary.families.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let after = &line[name_end..];
        let value = if let Some(close) = after.strip_prefix('{') {
            let end = close
                .find('}')
                .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
            close[end + 1..].trim()
        } else {
            after.trim()
        };
        if value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
        if !declared
            .iter()
            .any(|d| name == *d || name.strip_prefix(d).is_some_and(|s| s.starts_with('_')))
        {
            return Err(format!(
                "line {}: sample {name:?} has no # TYPE declaration",
                lineno + 1
            ));
        }
        summary.samples += 1;
    }
    Ok(summary)
}

/// Parses an [`crate::ObsReport`] metrics document and checks the
/// required top-level keys plus the presence of each named section.
pub fn validate_metrics_json(doc: &str, required_sections: &[&str]) -> Result<(), String> {
    let v = parse(doc)?;
    for key in ["meta", "counters", "gauges", "histograms", "sections"] {
        if v.get(key).is_none() {
            return Err(format!("metrics JSON is missing the {key:?} key"));
        }
    }
    let sections = v.get("sections").ok_or("missing sections")?;
    if !sections.is_obj() {
        return Err("sections is not an object".to_string());
    }
    for name in required_sections {
        if sections.get(name).is_none() {
            return Err(format!("metrics JSON is missing section {name:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;

    fn ev(name: &'static str, kind: EventKind, ts_ns: u64) -> Event {
        Event {
            name,
            kind,
            ts_ns,
            args: Vec::new(),
        }
    }

    fn thread(tid: u32, name: &str, events: Vec<Event>) -> ThreadEvents {
        ThreadEvents {
            tid,
            name: name.to_string(),
            events,
        }
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let threads = vec![
            thread(
                0,
                "main",
                vec![
                    Event {
                        name: "a",
                        kind: EventKind::Begin,
                        ts_ns: 1000,
                        args: vec![
                            ("n", ArgValue::U64(2)),
                            ("tag", ArgValue::Str("x\"y".into())),
                        ],
                    },
                    ev("b", EventKind::Begin, 2000),
                    ev("tick", EventKind::Instant, 2500),
                    ev("b", EventKind::End, 3000),
                    ev("a", EventKind::End, 4000),
                ],
            ),
            thread(
                1,
                "engine-worker-0",
                vec![
                    ev("job", EventKind::Begin, 1500),
                    ev("job", EventKind::End, 1800),
                ],
            ),
        ];
        let doc = chrome_trace_json(&threads);
        let summary = validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.begins, 3);
        assert_eq!(summary.ends, 3);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.threads, 2);
        // The named tracks exist as metadata.
        assert!(doc.contains("engine-worker-0"));
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn validator_rejects_unbalanced_and_misnested_traces() {
        let open = chrome_trace_json(&[thread(0, "t", vec![ev("a", EventKind::Begin, 1)])]);
        assert!(validate_chrome_trace(&open)
            .unwrap_err()
            .contains("left open"));

        let crossed = chrome_trace_json(&[thread(
            0,
            "t",
            vec![
                ev("a", EventKind::Begin, 1),
                ev("b", EventKind::Begin, 2),
                ev("a", EventKind::End, 3),
                ev("b", EventKind::End, 4),
            ],
        )]);
        assert!(validate_chrome_trace(&crossed).is_err());

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn prometheus_export_round_trips_through_the_validator() {
        crate::counter("promtest.requests").add(7);
        crate::gauge("promtest.depth").set(3.5);
        crate::histogram("promtest.latency").record_ns(1_500_000);
        let text = prometheus_text(&crate::snapshot());
        let summary = validate_prometheus_text(&text).unwrap();
        assert!(summary.families.len() >= 3);
        assert!(summary.samples >= 8);
        assert!(text.contains("modernize_promtest_requests_total 7"));
        assert!(text.contains("modernize_promtest_depth 3.5"));
        assert!(text.contains("modernize_promtest_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("modernize_promtest_latency_seconds_count 1"));

        assert!(validate_prometheus_text("9bad_name 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_prometheus_text("undeclared_sample 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx{tenant=\"t0\" 1\n").is_err());
    }

    #[test]
    fn metrics_validator_checks_required_keys_and_sections() {
        let mut report = crate::ObsReport::snapshot();
        report.meta("kind", "test");
        report.section_raw("engine", "{\"workers\":4}".to_string());
        let doc = report.to_json();
        validate_metrics_json(&doc, &["engine"]).unwrap();
        assert!(validate_metrics_json(&doc, &["absent"]).is_err());
        assert!(validate_metrics_json("{}", &[]).is_err());
        assert!(validate_metrics_json("[", &[]).is_err());
    }
}
