//! [`ObsReport`]: one serializable document combining the registry
//! snapshot with caller-provided metric sections.
//!
//! `obs` is a leaf crate — it cannot name `EngineMetrics` or
//! `PhaseTimes`. Callers serialize those themselves (they all implement
//! the shim's `Serialize`) and attach the JSON with [`ObsReport::section`];
//! the report embeds each section verbatim under `"sections"`.

use crate::registry::MetricsSnapshot;
use serde::{ser_key, ser_str, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One typed `meta` value. Run parameters are numbers and lists at
/// least as often as strings; stringifying them (`"workers": "1"`)
/// forces every downstream consumer to re-parse, so the report keeps
/// the JSON type.
#[derive(Clone, Debug)]
pub enum MetaValue {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
    /// Pre-serialized JSON, embedded verbatim (lists, objects).
    Raw(String),
}

impl Serialize for MetaValue {
    fn serialize_json(&self, out: &mut String) {
        match self {
            MetaValue::Str(s) => ser_str(out, s),
            // Integral values print without the float marker: a worker
            // count is `4`, not `4.0`.
            MetaValue::Num(v) if v.fract() == 0.0 && v.abs() < 9e15 => {
                out.push_str(&format!("{}", *v as i64));
            }
            MetaValue::Num(v) => v.serialize_json(out),
            MetaValue::Raw(json) => out.push_str(json),
        }
    }
}

/// A flat metrics document: typed `meta` key/values, the registry
/// snapshot (`counters`/`gauges`/`histograms`), and named `sections` of
/// caller-serialized JSON.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    meta: Vec<(String, MetaValue)>,
    metrics: MetricsSnapshot,
    sections: Vec<(String, String)>,
}

impl ObsReport {
    /// A report over the current registry contents.
    pub fn snapshot() -> ObsReport {
        ObsReport {
            meta: Vec::new(),
            metrics: crate::registry::snapshot(),
            sections: Vec::new(),
        }
    }

    /// Adds a string `meta` entry (run ids, experiment names, notes).
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta
            .push((key.to_string(), MetaValue::Str(value.to_string())));
    }

    /// Adds a numeric `meta` entry (worker counts, budgets, slopes),
    /// emitted as a JSON number.
    pub fn meta_num(&mut self, key: &str, value: f64) {
        self.meta.push((key.to_string(), MetaValue::Num(value)));
    }

    /// Adds an already-serialized JSON value as a `meta` entry, embedded
    /// verbatim (e.g. a factor list as a real JSON array).
    pub fn meta_raw(&mut self, key: &str, json: String) {
        self.meta.push((key.to_string(), MetaValue::Raw(json)));
    }

    /// Attaches a serializable value as a named section.
    pub fn section<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        let mut json = String::new();
        value.serialize_json(&mut json);
        self.section_raw(name, json);
    }

    /// Attaches an already-serialized JSON value as a named section.
    pub fn section_raw(&mut self, name: &str, json: String) {
        self.sections.push((name.to_string(), json));
    }

    /// Renders the report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.serialize_json(&mut out);
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

impl Serialize for ObsReport {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        ser_key(out, "meta");
        out.push('{');
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, k);
            v.serialize_json(out);
        }
        out.push_str("},");
        ser_key(out, "counters");
        self.metrics.counters.serialize_json(out);
        out.push(',');
        ser_key(out, "gauges");
        self.metrics.gauges.serialize_json(out);
        out.push(',');
        ser_key(out, "histograms");
        self.metrics.histograms.serialize_json(out);
        out.push(',');
        ser_key(out, "sections");
        out.push('{');
        for (i, (name, json)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, name);
            out.push_str(json); // embedded verbatim: already JSON
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn report_embeds_sections_verbatim_and_parses_back() {
        let mut r = ObsReport::snapshot();
        r.meta_num("workers", 4.0);
        r.meta_num("slope", 1.138);
        r.meta_raw("factors", "[1,4,16]".to_string());
        r.meta("note", "has \"quotes\"");
        r.section("list", &vec![1u64, 2, 3]);
        r.section_raw(
            "engine",
            r#"{"jobs_executed":7,"hit_rate":0.5}"#.to_string(),
        );
        let doc = r.to_json();
        let v = parse(&doc).unwrap();
        let meta = v.get("meta").unwrap();
        // Numbers stay numbers: integral without a float marker,
        // fractional as-is.
        assert!(matches!(meta.get("workers"), Some(Json::Num(_))));
        assert_eq!(meta.get("workers").unwrap().as_f64(), Some(4.0));
        assert!(doc.contains("\"workers\":4,"), "{doc}");
        assert_eq!(meta.get("slope").unwrap().as_f64(), Some(1.138));
        // Raw values embed as real JSON structure.
        let factors = meta.get("factors").unwrap().as_arr().unwrap();
        assert_eq!(factors.len(), 3);
        assert_eq!(factors[1].as_f64(), Some(4.0));
        assert_eq!(meta.get("note").unwrap().as_str(), Some("has \"quotes\""));
        let list = v
            .get("sections")
            .unwrap()
            .get("list")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(list.len(), 3);
        let engine = v.get("sections").unwrap().get("engine").unwrap();
        assert_eq!(engine.get("jobs_executed").unwrap().as_f64(), Some(7.0));
        assert!(matches!(v.get("counters"), Some(Json::Arr(_))));
    }
}
