//! [`ObsReport`]: one serializable document combining the registry
//! snapshot with caller-provided metric sections.
//!
//! `obs` is a leaf crate — it cannot name `EngineMetrics` or
//! `PhaseTimes`. Callers serialize those themselves (they all implement
//! the shim's `Serialize`) and attach the JSON with [`ObsReport::section`];
//! the report embeds each section verbatim under `"sections"`.

use crate::registry::MetricsSnapshot;
use serde::{ser_key, ser_str, Serialize};
use std::io::Write as _;
use std::path::Path;

/// A flat metrics document: `meta` (string key/values), the registry
/// snapshot (`counters`/`gauges`/`histograms`), and named `sections` of
/// caller-serialized JSON.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    meta: Vec<(String, String)>,
    metrics: MetricsSnapshot,
    sections: Vec<(String, String)>,
}

impl ObsReport {
    /// A report over the current registry contents.
    pub fn snapshot() -> ObsReport {
        ObsReport {
            meta: Vec::new(),
            metrics: crate::registry::snapshot(),
            sections: Vec::new(),
        }
    }

    /// Adds a `meta` entry (run parameters, ids, timestamps).
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Attaches a serializable value as a named section.
    pub fn section<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        let mut json = String::new();
        value.serialize_json(&mut json);
        self.section_raw(name, json);
    }

    /// Attaches an already-serialized JSON value as a named section.
    pub fn section_raw(&mut self, name: &str, json: String) {
        self.sections.push((name.to_string(), json));
    }

    /// Renders the report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.serialize_json(&mut out);
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

impl Serialize for ObsReport {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        ser_key(out, "meta");
        out.push('{');
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, k);
            ser_str(out, v);
        }
        out.push_str("},");
        ser_key(out, "counters");
        self.metrics.counters.serialize_json(out);
        out.push(',');
        ser_key(out, "gauges");
        self.metrics.gauges.serialize_json(out);
        out.push(',');
        ser_key(out, "histograms");
        self.metrics.histograms.serialize_json(out);
        out.push(',');
        ser_key(out, "sections");
        out.push('{');
        for (i, (name, json)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, name);
            out.push_str(json); // embedded verbatim: already JSON
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn report_embeds_sections_verbatim_and_parses_back() {
        let mut r = ObsReport::snapshot();
        r.meta("workers", 4);
        r.meta("note", "has \"quotes\"");
        r.section("list", &vec![1u64, 2, 3]);
        r.section_raw(
            "engine",
            r#"{"jobs_executed":7,"hit_rate":0.5}"#.to_string(),
        );
        let doc = r.to_json();
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("meta").unwrap().get("workers").unwrap().as_str(),
            Some("4")
        );
        assert_eq!(
            v.get("meta").unwrap().get("note").unwrap().as_str(),
            Some("has \"quotes\"")
        );
        let list = v
            .get("sections")
            .unwrap()
            .get("list")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(list.len(), 3);
        let engine = v.get("sections").unwrap().get("engine").unwrap();
        assert_eq!(engine.get("jobs_executed").unwrap().as_f64(), Some(7.0));
        assert!(matches!(v.get("counters"), Some(Json::Arr(_))));
    }
}
