//! Span and instant events: thread-local recording, process-wide
//! collection.
//!
//! Each thread that records gets its own buffer (registered once in a
//! global collector), so recording never contends across threads; the
//! buffer's mutex only synchronizes the owning thread against
//! [`take_events`]. Begin/end balance holds per thread by construction:
//! a [`SpanGuard`] writes its begin event at creation and its end event
//! on drop, on the same thread, in scope order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One argument value attached to an event (rendered into the Chrome
/// trace `args` object).
#[derive(Clone, Debug)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    /// A static string — no allocation at the recording site.
    Static(&'static str),
}

/// Event phase, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: &'static str,
    pub kind: EventKind,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// All events one thread recorded, in recording order.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Stable per-process thread ordinal (the Chrome `tid`).
    pub tid: u32,
    /// The OS thread's name at first recording (the Perfetto track name).
    pub name: String,
    pub events: Vec<Event>,
}

struct ThreadBuf {
    tid: u32,
    name: String,
    events: Mutex<Vec<Event>>,
}

fn collector() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static COLLECTOR: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// Appends one event to the calling thread's buffer, registering the
/// buffer on first use. Locks are recovered from poisoning: the engine
/// contains job panics, and a panic while a buffer lock was held leaves
/// the already-pushed events intact.
fn record(name: &'static str, kind: EventKind, args: Vec<(&'static str, ArgValue)>) {
    let ts_ns = crate::now_ns();
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            static NEXT_TID: AtomicU32 = AtomicU32::new(0);
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                name,
                events: Mutex::new(Vec::new()),
            });
            collector()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&buf));
            buf
        });
        buf.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Event {
                name,
                kind,
                ts_ns,
                args,
            });
    });
}

/// An open span. Created by [`span`]/[`span_args`]; records the end
/// event when dropped. Inert (records nothing, allocates nothing) when
/// tracing was disabled at creation.
#[must_use = "a span guard measures the scope it lives in"]
pub struct SpanGuard {
    name: &'static str,
    active: bool,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// Attaches an argument to the span's end event (e.g. a result count
    /// known only at the end of the scope). No-op when inert.
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if self.active {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            // Record the end even if tracing was disabled mid-span, so
            // per-thread begin/end balance always holds.
            record(self.name, EventKind::End, std::mem::take(&mut self.args));
        }
    }
}

/// Opens a span covering the guard's lifetime. `name` should be a
/// stable, dot-separated site name (`"finder.match"`, `"vm.slice"`).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            name,
            active: false,
            args: Vec::new(),
        };
    }
    record(name, EventKind::Begin, Vec::new());
    SpanGuard {
        name,
        active: true,
        args: Vec::new(),
    }
}

/// [`span`] with arguments on the begin event. The closure only runs
/// when tracing is enabled, so building the argument vector costs
/// nothing on the disabled path.
#[inline]
pub fn span_args(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            name,
            active: false,
            args: Vec::new(),
        };
    }
    record(name, EventKind::Begin, args());
    SpanGuard {
        name,
        active: true,
        args: Vec::new(),
    }
}

/// Records a point event (cache hit, fault, deadline expiry).
#[inline]
pub fn instant(name: &'static str) {
    if crate::enabled() {
        record(name, EventKind::Instant, Vec::new());
    }
}

/// [`instant`] with arguments; the closure only runs when enabled.
#[inline]
pub fn instant_args(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, ArgValue)>) {
    if crate::enabled() {
        record(name, EventKind::Instant, args());
    }
}

/// Drains every thread's recorded events. Threads stay registered, so
/// recording can continue after a drain; call between workloads to get
/// per-workload traces.
pub fn take_events() -> Vec<ThreadEvents> {
    let mut out: Vec<ThreadEvents> = Vec::new();
    let bufs = collector().lock().unwrap_or_else(PoisonError::into_inner);
    for buf in bufs.iter() {
        let events =
            std::mem::take(&mut *buf.events.lock().unwrap_or_else(PoisonError::into_inner));
        if !events.is_empty() {
            out.push(ThreadEvents {
                tid: buf.tid,
                name: buf.name.clone(),
                events,
            });
        }
    }
    out.sort_by_key(|t| t.tid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span recording state is process-global, so this file keeps to a
    // single test exercising the whole lifecycle (enable → record on
    // several threads → drain → disabled inertness).
    #[test]
    fn records_balanced_events_across_threads_and_drains() {
        // Disabled: guards are inert and nothing is buffered.
        {
            let mut g = span("off");
            g.arg("k", ArgValue::U64(1));
            instant("off.instant");
        }
        assert!(take_events().is_empty());

        crate::enable();
        {
            let mut outer = span_args("outer", || vec![("n", ArgValue::U64(3))]);
            {
                let _inner = span("inner");
                instant_args("tick", || vec![("which", ArgValue::Static("first"))]);
            }
            outer.arg("result", ArgValue::Str("done".into()));
        }
        let handle = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                let _s = span("worker.job");
            })
            .unwrap();
        handle.join().unwrap();
        crate::disable();

        let threads = take_events();
        assert_eq!(threads.len(), 2, "main + worker recorded");
        let worker = threads
            .iter()
            .find(|t| t.name == "obs-test-worker")
            .expect("worker thread buffer");
        assert_eq!(worker.events.len(), 2);

        for t in &threads {
            let mut depth = 0i64;
            let mut last_ts = 0u64;
            for e in &t.events {
                assert!(e.ts_ns >= last_ts, "timestamps are monotonic per thread");
                last_ts = e.ts_ns;
                match e.kind {
                    EventKind::Begin => depth += 1,
                    EventKind::End => {
                        depth -= 1;
                        assert!(depth >= 0, "end without begin on {}", t.name);
                    }
                    EventKind::Instant => {}
                }
            }
            assert_eq!(depth, 0, "balanced begin/end on {}", t.name);
        }

        // Drained: a second take sees nothing; disabled: nothing new.
        let _ = span("after");
        assert!(take_events().is_empty());
    }
}
