//! A minimal JSON value tree, parsed with the vendored serde shim's
//! token parser. The shim deliberately has no dynamic `Value` type (its
//! derives are fully typed), but the trace/metrics *validators* need
//! one: they check files whose exact shape is the thing under test.

use serde::de::Parser;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser::new(input);
    let v = parse_value(&mut p)?;
    if !p.at_end() {
        return Err("trailing content after JSON document".to_string());
    }
    Ok(v)
}

fn parse_value(p: &mut Parser<'_>) -> Result<Json, String> {
    match p.peek_char() {
        Some('{') => {
            p.expect_char('{').map_err(|e| e.to_string())?;
            let mut members = Vec::new();
            if p.peek_char() == Some('}') {
                p.expect_char('}').map_err(|e| e.to_string())?;
                return Ok(Json::Obj(members));
            }
            loop {
                let key = p.parse_key().map_err(|e| e.to_string())?;
                let value = parse_value(p)?;
                members.push((key, value));
                if p.peek_char() == Some(',') {
                    p.expect_char(',').map_err(|e| e.to_string())?;
                } else {
                    break;
                }
            }
            p.expect_char('}').map_err(|e| e.to_string())?;
            Ok(Json::Obj(members))
        }
        Some('[') => {
            p.expect_char('[').map_err(|e| e.to_string())?;
            let mut items = Vec::new();
            if p.peek_char() == Some(']') {
                p.expect_char(']').map_err(|e| e.to_string())?;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(p)?);
                if p.peek_char() == Some(',') {
                    p.expect_char(',').map_err(|e| e.to_string())?;
                } else {
                    break;
                }
            }
            p.expect_char(']').map_err(|e| e.to_string())?;
            Ok(Json::Arr(items))
        }
        Some('"') => Ok(Json::Str(p.parse_string().map_err(|e| e.to_string())?)),
        Some('t') | Some('f') => {
            if p.consume_lit("true") {
                Ok(Json::Bool(true))
            } else if p.consume_lit("false") {
                Ok(Json::Bool(false))
            } else {
                Err("expected boolean".to_string())
            }
        }
        Some('n') => {
            if p.consume_lit("null") {
                Ok(Json::Null)
            } else {
                Err("expected null".to_string())
            }
        }
        Some(_) => {
            let tok = p.parse_number_token().map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {tok:?}: {e}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}} "#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("").is_err());
    }
}
