//! The metrics registry: named counters, gauges and duration histograms.
//!
//! Handles are cheap `Arc`s over atomics: registration (name lookup)
//! takes a lock once, after which every increment is lock-free. Unlike
//! spans, metrics are *not* gated on [`crate::enabled`] — callers that
//! flush per-run totals check the gate themselves, so a disabled run
//! never touches the registry at all.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// A monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding one `f64` (last write wins).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` (may be negative). A lock-free CAS loop
    /// over the f64 bit pattern, so concurrent adders — e.g. circuit
    /// breakers opening and closing on different threads — never lose
    /// an update the way a racy `set(get() + d)` would.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Power-of-two nanosecond buckets: bucket `i` counts samples with
/// `ns < 2^i`. 48 buckets cover ~3 days.
const BUCKETS: usize = 48;

struct HistogramInner {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A named duration histogram (power-of-two nanosecond buckets).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn record_ns(&self, ns: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile in nanoseconds, from
    /// the power-of-two buckets: the true value lies in
    /// `(estimate/2, estimate]`, i.e. the estimate is within one
    /// bucket width of exact (pinned by proptest against a sorted
    /// reference). Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let h = &self.0;
        let count = h.count.load(Ordering::Relaxed);
        quantile_from_buckets(&h.buckets, count, q)
    }
}

/// Shared bucket-walk for [`Histogram::quantile_ns`] and the registry
/// snapshot: the upper bound `2^i` of the bucket holding the rank-`⌈qN⌉`
/// sample.
fn quantile_from_buckets(buckets: &[AtomicU64; BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b.load(Ordering::Relaxed);
        if seen >= rank {
            return 1u64 << i;
        }
    }
    1u64 << (BUCKETS - 1)
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The counter named `name`, creating it at zero on first use.
pub fn counter(name: &str) -> Counter {
    lock(&registry().counters)
        .entry(name.to_string())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// The gauge named `name`, creating it at zero on first use.
pub fn gauge(name: &str) -> Gauge {
    lock(&registry().gauges)
        .entry(name.to_string())
        .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        .clone()
}

/// The histogram named `name`, creating it empty on first use.
pub fn histogram(name: &str) -> Histogram {
    lock(&registry().histograms)
        .entry(name.to_string())
        .or_insert_with(|| {
            Histogram(Arc::new(HistogramInner {
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }))
        })
        .clone()
}

/// One counter's snapshot.
#[derive(Clone, Debug, Serialize)]
pub struct CounterValue {
    pub name: String,
    pub value: u64,
}

/// One gauge's snapshot.
#[derive(Clone, Debug, Serialize)]
pub struct GaugeValue {
    pub name: String,
    pub value: f64,
}

/// One histogram's snapshot. The `p*_ms` quantiles are bucket
/// upper-bound estimates (within one power-of-two bucket of exact);
/// the other fields are exact.
#[derive(Clone, Debug, Serialize)]
pub struct HistogramValue {
    pub name: String,
    pub count: u64,
    pub sum_ms: f64,
    pub avg_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
}

/// A point-in-time copy of the whole registry, ordered by name.
#[derive(Clone, Debug, Default, Serialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterValue>,
    pub gauges: Vec<GaugeValue>,
    pub histograms: Vec<HistogramValue>,
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let counters = lock(&registry().counters)
        .iter()
        .map(|(name, c)| CounterValue {
            name: name.clone(),
            value: c.get(),
        })
        .collect();
    let gauges = lock(&registry().gauges)
        .iter()
        .map(|(name, g)| GaugeValue {
            name: name.clone(),
            value: g.get(),
        })
        .collect();
    let histograms = lock(&registry().histograms)
        .iter()
        .map(|(name, h)| {
            let count = h.0.count.load(Ordering::Relaxed);
            let sum_ns = h.0.sum_ns.load(Ordering::Relaxed);
            let max_ns = h.0.max_ns.load(Ordering::Relaxed);
            let ms = |ns: u64| ns as f64 / 1e6;
            let q = |q: f64| ms(quantile_from_buckets(&h.0.buckets, count, q));
            HistogramValue {
                name: name.clone(),
                count,
                sum_ms: ms(sum_ns),
                avg_ms: if count == 0 {
                    0.0
                } else {
                    ms(sum_ns) / count as f64
                },
                p50_ms: q(0.5),
                p90_ms: q(0.9),
                p99_ms: q(0.99),
                p999_ms: q(0.999),
                max_ms: ms(max_ns),
            }
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshot_in_name_order() {
        counter("test.zz").add(5);
        counter("test.aa").inc();
        counter("test.aa").inc(); // same underlying counter
        gauge("test.g").set(2.5);
        histogram("test.h").record(Duration::from_micros(100));
        histogram("test.h").record(Duration::from_micros(300));

        let snap = snapshot();
        let get = |n: &str| snap.counters.iter().find(|c| c.name == n).unwrap().value;
        assert_eq!(get("test.aa"), 2);
        assert_eq!(get("test.zz"), 5);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot is name-ordered");

        assert_eq!(
            snap.gauges
                .iter()
                .find(|g| g.name == "test.g")
                .unwrap()
                .value,
            2.5
        );
        let h = snap.histograms.iter().find(|h| h.name == "test.h").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum_ms - 0.4).abs() < 1e-9, "{}", h.sum_ms);
        assert!(h.max_ms >= 0.3 - 1e-9);
        assert!(h.p50_ms > 0.0);
        assert!(h.p90_ms >= h.p50_ms && h.p99_ms >= h.p90_ms && h.p999_ms >= h.p99_ms);
        // Upper-bound estimates: never below the exact quantile.
        assert!(h.p999_ms >= 0.3 - 1e-9 && h.p999_ms <= 0.6 + 1e-9);
    }
}
