//! SLO accounting: sliding-window good/bad classification and
//! multi-window burn rates (DESIGN.md §16).
//!
//! Each *valid* request outcome is classified good (answered `ok`
//! within the latency threshold) or bad (server-fault error classes, or
//! `ok` but over the threshold). Policy rejections — overload sheds,
//! quota denials, malformed requests — are excluded entirely: they are
//! the daemon *protecting* its SLO, not violating it, and counting them
//! would let a load test that deliberately provokes admission control
//! fail a healthy service.
//!
//! Burn rate follows the standard multi-window formulation: with error
//! budget `1 - target`, `burn = bad_fraction / (1 - target)`; burn 1.0
//! consumes the budget exactly as fast as it refills, burn > 1.0 is an
//! incident. Production systems pair a short (5 m) and long (1 h) wall
//! clock window; a request-count analogue (last `short_window` /
//! `long_window` outcomes) gives the same fast-detect + slow-confirm
//! behaviour without a clock, which keeps seeded runs deterministic.

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The objective and window geometry.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Availability objective, e.g. `0.99` → 1% error budget.
    pub target: f64,
    /// An `ok` answer slower than this (queue wait + service) is bad.
    pub latency_threshold_ms: f64,
    /// Fast-detect window, in outcomes (5-minute analogue).
    pub short_window: usize,
    /// Slow-confirm window, in outcomes (1-hour analogue).
    pub long_window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target: 0.99,
            latency_threshold_ms: 2000.0,
            short_window: 100,
            long_window: 1000,
        }
    }
}

/// Point-in-time SLO state, serialized into `stats` and bench reports.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SloSnapshot {
    pub target: f64,
    pub latency_threshold_ms: f64,
    pub total: u64,
    pub good: u64,
    pub bad: u64,
    pub short_window: u64,
    pub long_window: u64,
    /// Bad fraction over the last `short_window` outcomes ÷ budget.
    pub short_burn: f64,
    /// Bad fraction over the last `long_window` outcomes ÷ budget.
    pub long_burn: f64,
}

/// Sliding-window good/bad tracker. `record*` is a push onto a bounded
/// deque under one mutex — called once per answered request.
pub struct SloTracker {
    config: SloConfig,
    total: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
    /// Most recent `long_window` outcomes, newest at the back.
    window: Mutex<VecDeque<bool>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SloTracker {
    pub fn new(config: SloConfig) -> SloTracker {
        let config = SloConfig {
            target: config.target.clamp(0.0, 0.9999),
            short_window: config.short_window.max(1),
            long_window: config.long_window.max(config.short_window.max(1)),
            ..config
        };
        SloTracker {
            config,
            total: AtomicU64::new(0),
            good: AtomicU64::new(0),
            bad: AtomicU64::new(0),
            window: Mutex::new(VecDeque::with_capacity(config.long_window)),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one classified outcome.
    pub fn record(&self, good: bool) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if good {
            self.good.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bad.fetch_add(1, Ordering::Relaxed);
        }
        let mut w = lock(&self.window);
        if w.len() == self.config.long_window {
            w.pop_front();
        }
        w.push_back(good);
    }

    /// Classifies an answered request: good iff it succeeded *and* met
    /// the latency threshold.
    pub fn record_latency_ms(&self, latency_ms: f64, server_error: bool) {
        self.record(!server_error && latency_ms <= self.config.latency_threshold_ms);
    }

    pub fn snapshot(&self) -> SloSnapshot {
        let w = lock(&self.window);
        let burn = |n: usize| {
            let tail = w.len().min(n);
            if tail == 0 {
                return 0.0;
            }
            let bad = w.iter().rev().take(tail).filter(|g| !**g).count();
            let budget = 1.0 - self.config.target;
            (bad as f64 / tail as f64) / budget
        };
        SloSnapshot {
            target: self.config.target,
            latency_threshold_ms: self.config.latency_threshold_ms,
            total: self.total.load(Ordering::Relaxed),
            good: self.good.load(Ordering::Relaxed),
            bad: self.bad.load(Ordering::Relaxed),
            short_window: self.config.short_window as u64,
            long_window: self.config.long_window as u64,
            short_burn: burn(self.config.short_window),
            long_burn: burn(self.config.long_window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rates_scale_bad_fraction_by_budget() {
        let t = SloTracker::new(SloConfig {
            target: 0.9, // 10% budget
            latency_threshold_ms: 100.0,
            short_window: 10,
            long_window: 100,
        });
        for _ in 0..95 {
            t.record(true);
        }
        for _ in 0..5 {
            t.record(false);
        }
        let s = t.snapshot();
        assert_eq!((s.total, s.good, s.bad), (100, 95, 5));
        // Short window: last 10 outcomes are 5 good + 5 bad → 50% bad ÷ 10%.
        assert!((s.short_burn - 5.0).abs() < 1e-9, "{}", s.short_burn);
        // Long window: 5 bad of 100 → 5% bad ÷ 10% = 0.5.
        assert!((s.long_burn - 0.5).abs() < 1e-9, "{}", s.long_burn);
    }

    #[test]
    fn latency_threshold_classifies_slow_ok_as_bad() {
        let t = SloTracker::new(SloConfig::default());
        t.record_latency_ms(10.0, false); // fast ok → good
        t.record_latency_ms(9000.0, false); // slow ok → bad
        t.record_latency_ms(10.0, true); // server error → bad
        let s = t.snapshot();
        assert_eq!((s.good, s.bad), (1, 2));
        assert!(s.short_burn > 0.0);
    }

    #[test]
    fn window_evicts_oldest_outcomes() {
        let t = SloTracker::new(SloConfig {
            target: 0.99,
            latency_threshold_ms: 100.0,
            short_window: 4,
            long_window: 8,
        });
        for _ in 0..8 {
            t.record(false);
        }
        for _ in 0..8 {
            t.record(true);
        }
        let s = t.snapshot();
        // All bad outcomes have been evicted from the long window.
        assert_eq!(s.long_burn, 0.0);
        assert_eq!(s.short_burn, 0.0);
        assert_eq!(s.bad, 8, "lifetime totals keep the evicted outcomes");
    }
}
