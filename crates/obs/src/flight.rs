//! The flight recorder: an always-on, bounded, lock-striped ring of
//! structured service events (DESIGN.md §16).
//!
//! Spans answer "where does time go"; the flight recorder answers
//! "what happened to request X" after the fact. Every admission
//! decision, queue transition, worker fault and client-side breaker
//! decision appends one [`FlightEvent`] stamped with the request id
//! and a monotonic timestamp. The buffer is bounded (old events are
//! overwritten, never allocated past capacity) so it can stay on in
//! production, and its contents — the last `capacity()` events,
//! exactly — are dumped as a "blackbox" on worker death, panic,
//! takeover, or on demand.
//!
//! Layout: one global `AtomicU64` hands out sequence numbers; event
//! `seq` lives in stripe `seq % STRIPES` at slot
//! `(seq / STRIPES) % per_stripe`. Because the mapping is a pure
//! function of `seq`, the set of surviving events is always the last
//! `STRIPES * per_stripe` sequence numbers — exact global oldest-first
//! eviction without any cross-stripe coordination. Writers contend
//! only on their own stripe's mutex (held for a field-wise store, no
//! allocation), so recording is ~zero cost next to the request work
//! around it.

use serde::{ser_key, ser_str, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of independently locked stripes.
pub const STRIPES: usize = 8;

/// Default total capacity (events) when [`configure`] was never called.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded event. `ts_ns` is nanoseconds since the process obs
/// epoch (the same clock spans use), so flight events and trace events
/// interleave on one timeline.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (dense, starts at 0).
    pub seq: u64,
    /// Monotonic nanoseconds since the obs epoch.
    pub ts_ns: u64,
    /// Event class, e.g. `"enqueue"`, `"shed"`, `"breaker_trip"`.
    pub kind: &'static str,
    /// The request this event belongs to ("" for process-scoped events
    /// such as takeover or respawn).
    pub request_id: String,
    /// Free-form `key=value` detail.
    pub detail: String,
}

impl Serialize for FlightEvent {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        ser_key(out, "seq");
        self.seq.serialize_json(out);
        out.push(',');
        ser_key(out, "ts_ns");
        self.ts_ns.serialize_json(out);
        out.push(',');
        ser_key(out, "kind");
        ser_str(out, self.kind);
        out.push(',');
        ser_key(out, "request_id");
        ser_str(out, &self.request_id);
        out.push(',');
        ser_key(out, "detail");
        ser_str(out, &self.detail);
        out.push('}');
    }
}

struct Recorder {
    per_stripe: usize,
    next_seq: AtomicU64,
    stripes: [Mutex<Vec<Option<FlightEvent>>>; STRIPES],
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static CAPACITY_HINT: AtomicU64 = AtomicU64::new(0);
static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| {
        let hint = CAPACITY_HINT.load(Ordering::SeqCst) as usize;
        let total = if hint == 0 { DEFAULT_CAPACITY } else { hint };
        let per_stripe = total.div_ceil(STRIPES).max(1);
        Recorder {
            per_stripe,
            next_seq: AtomicU64::new(0),
            stripes: std::array::from_fn(|_| Mutex::new((0..per_stripe).map(|_| None).collect())),
        }
    })
}

/// Requests a total ring capacity (rounded up to a multiple of
/// [`STRIPES`]). Takes effect only if called before the first
/// [`event`]/[`snapshot`]; returns whether the hint landed.
pub fn configure(total_capacity: usize) -> bool {
    CAPACITY_HINT.store(total_capacity as u64, Ordering::SeqCst);
    RECORDER.get().is_none()
}

/// Total events the ring retains.
pub fn capacity() -> usize {
    let r = recorder();
    r.per_stripe * STRIPES
}

/// Total events recorded since process start (including evicted ones).
pub fn recorded() -> u64 {
    recorder().next_seq.load(Ordering::Relaxed)
}

/// Appends one event. Always on — there is no enable gate; the cost is
/// one `fetch_add`, one striped lock, and the two argument `String`s.
pub fn event(kind: &'static str, request_id: &str, detail: String) {
    let r = recorder();
    let seq = r.next_seq.fetch_add(1, Ordering::Relaxed);
    let ev = FlightEvent {
        seq,
        ts_ns: crate::now_ns(),
        kind,
        request_id: request_id.to_string(),
        detail,
    };
    let stripe = (seq as usize) % STRIPES;
    let slot = (seq as usize / STRIPES) % r.per_stripe;
    lock(&r.stripes[stripe])[slot] = Some(ev);
}

/// Copies out every surviving event, oldest first (sorted by `seq`).
/// Non-destructive: the ring keeps recording.
pub fn snapshot() -> Vec<FlightEvent> {
    let r = recorder();
    let mut out = Vec::with_capacity(r.per_stripe * STRIPES);
    for stripe in &r.stripes {
        out.extend(lock(stripe).iter().flatten().cloned());
    }
    out.sort_unstable_by_key(|e| e.seq);
    out
}

/// Renders the blackbox dump: a snapshot plus the reason it was taken
/// and ring accounting, as one JSON object.
pub fn blackbox_json(reason: &str) -> String {
    let events = snapshot();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push('{');
    ser_key(&mut out, "reason");
    ser_str(&mut out, reason);
    out.push(',');
    ser_key(&mut out, "recorded");
    recorded().serialize_json(&mut out);
    out.push(',');
    ser_key(&mut out, "capacity");
    capacity().serialize_json(&mut out);
    out.push(',');
    ser_key(&mut out, "events");
    events.serialize_json(&mut out);
    out.push_str("}\n");
    out
}

/// Writes [`blackbox_json`] to `path`.
pub fn write_blackbox(path: &std::path::Path, reason: &str) -> std::io::Result<()> {
    std::fs::write(path, blackbox_json(reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so tests share it; they only assert
    // properties that hold regardless of interleaving with other tests
    // (dedicated wraparound/concurrency tests run in their own binary,
    // crates/obs/tests/flight.rs).
    #[test]
    fn events_survive_and_snapshot_is_seq_ordered() {
        event("test_evt", "rid-1", "k=v".to_string());
        event("test_evt", "rid-2", "k=w".to_string());
        let snap = snapshot();
        assert!(!snap.is_empty());
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "snapshot sorted by seq");
        }
        assert!(snap
            .iter()
            .any(|e| e.kind == "test_evt" && e.request_id == "rid-2" && e.detail == "k=w"));
        assert!(recorded() >= 2);

        let json = blackbox_json("unit_test");
        let v = crate::json::parse(&json).expect("blackbox parses");
        assert_eq!(v.get("reason").and_then(|r| r.as_str()), Some("unit_test"));
        assert!(v.get("events").and_then(|e| e.as_arr()).is_some());
    }
}
