//! `repro-obs` — the observability core of the reproduction pipeline.
//!
//! Five pieces (DESIGN.md §11, §16):
//!
//! - **Span tracing** ([`span`]): RAII guards record begin/end events
//!   into thread-local buffers; a process-wide collector drains them.
//!   Every recording site is gated behind one relaxed atomic load
//!   ([`enabled`]), so a build with tracing off pays a few nanoseconds
//!   per site and allocates nothing.
//! - **Metrics registry** ([`registry`]): named counters, gauges and
//!   histograms (with log-bucketed p50/p90/p99/p999 quantiles),
//!   snapshot into a serializable [`MetricsSnapshot`]. The pipeline's
//!   existing metrics structs (`EngineMetrics`, `PhaseTimes`, …) embed
//!   in an [`ObsReport`] as pre-serialized JSON sections, which keeps
//!   this crate a leaf — everything depends on `obs`, `obs` depends
//!   only on the vendored serde shims.
//! - **Flight recorder** ([`flight`]): an always-on, bounded,
//!   lock-striped ring of structured events stamped with request ids —
//!   the black box a crashed or misbehaving service dumps for post-hoc
//!   reconstruction.
//! - **SLO tracking** ([`slo`]): sliding-window good/bad accounting
//!   with multi-window burn rates, gated in CI.
//! - **Exporters** ([`export`]): Chrome trace-event JSON (loadable in
//!   Perfetto or `chrome://tracing`, worker threads as named tracks), a
//!   flat metrics JSON, and a Prometheus text exposition — plus
//!   validators for all three used by tests and the CI checker.
//!
//! Tracing is off by default. Turn it on with [`enable`] (the bench
//! binaries do this when `--trace-out`/`--metrics-json` is passed), run
//! the workload, then [`take_events`] + [`export::write_chrome_trace`].

pub mod export;
pub mod flight;
pub mod json;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;

pub use export::{
    chrome_trace_json, prometheus_text, validate_chrome_trace, validate_metrics_json,
    validate_prometheus_text, write_chrome_trace, PromSummary, TraceSummary,
};
pub use flight::FlightEvent;
pub use registry::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, MetricsSnapshot,
};
pub use report::ObsReport;
pub use slo::{SloConfig, SloSnapshot, SloTracker};
pub use span::{
    instant, instant_args, span, span_args, take_events, ArgValue, Event, EventKind, SpanGuard,
    ThreadEvents,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on. One relaxed load — this is the check
/// every instrumentation site makes first, and the *only* cost a site
/// pays while tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on (and anchors the trace epoch, so the first
/// event does not pay the `OnceLock` initialization inside a span).
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns span recording off. Spans already open still record their end
/// event, so per-thread begin/end balance is preserved.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The process-wide trace epoch: all event timestamps are nanoseconds
/// since this instant.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}
