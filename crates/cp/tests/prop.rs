//! Property-based tests: the solver against a brute-force oracle on
//! random binary CSPs.

use cp::search::search_with;
use cp::{AllDifferent, NotEqual, Propagator, VarId};
use proptest::prelude::*;

/// A random CSP: `n` variables with domain `0..=max`, `NotEqual`
/// constraints with offsets, optionally an all-different over everything.
#[derive(Clone, Debug)]
struct Csp {
    n: usize,
    max: u32,
    neqs: Vec<(usize, usize, i64)>,
    alldiff: bool,
}

fn csp_strategy() -> impl Strategy<Value = Csp> {
    (
        2usize..5,
        1u32..5,
        prop::collection::vec((0usize..5, 0usize..5, -3i64..4), 0..8),
        any::<bool>(),
    )
        .prop_map(|(n, max, raw, alldiff)| Csp {
            n,
            max,
            neqs: raw
                .into_iter()
                .map(|(a, b, o)| (a % n, b % n, o))
                .filter(|(a, b, _)| a != b)
                .collect(),
            alldiff,
        })
}

fn satisfies(csp: &Csp, assignment: &[u32]) -> bool {
    for &(a, b, o) in &csp.neqs {
        if assignment[a] as i64 == assignment[b] as i64 + o {
            return false;
        }
    }
    if csp.alldiff {
        for i in 0..csp.n {
            for j in (i + 1)..csp.n {
                if assignment[i] == assignment[j] {
                    return false;
                }
            }
        }
    }
    true
}

/// Enumerates all assignments by brute force.
fn brute_force(csp: &Csp) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; csp.n];
    fn rec(csp: &Csp, i: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == csp.n {
            if satisfies(csp, cur) {
                out.push(cur.clone());
            }
            return;
        }
        for v in 0..=csp.max {
            cur[i] = v;
            rec(csp, i + 1, cur, out);
        }
    }
    rec(csp, 0, &mut cur, &mut out);
    out
}

fn build_search(csp: &Csp) -> cp::Search {
    let csp = csp.clone();
    search_with(move |store| {
        let vars: Vec<VarId> = (0..csp.n).map(|_| store.new_var(0, csp.max)).collect();
        let mut props: Vec<Box<dyn Propagator>> = Vec::new();
        for &(a, b, o) in &csp.neqs {
            props.push(Box::new(NotEqual::with_offset(vars[a], vars[b], o)));
        }
        if csp.alldiff {
            props.push(Box::new(AllDifferent::new(vars.clone())));
        }
        props
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness + completeness: the solver finds a solution exactly when
    /// brute force does, and the solution satisfies the constraints.
    #[test]
    fn solver_agrees_with_brute_force(csp in csp_strategy()) {
        let oracle = brute_force(&csp);
        let mut search = build_search(&csp);
        match search.solve_first() {
            cp::Outcome::Solution { values, complete } => {
                // Stopping at the first solution is an early exit, so the
                // space is reported as not fully explored.
                prop_assert!(!complete || oracle.len() == 1);
                prop_assert!(satisfies(&csp, &values), "solver produced {values:?}");
                prop_assert!(!oracle.is_empty(), "oracle says UNSAT");
            }
            cp::Outcome::Unsat => {
                prop_assert!(oracle.is_empty(), "oracle found {:?}", oracle.first());
            }
            cp::Outcome::Exhausted => prop_assert!(false, "no budget was set"),
        }
    }

    /// Enumeration visits every solution exactly once.
    #[test]
    fn solver_enumerates_all_solutions(csp in csp_strategy()) {
        let mut oracle = brute_force(&csp);
        oracle.sort();
        let mut found: Vec<Vec<u32>> = Vec::new();
        let mut search = build_search(&csp);
        let complete = search.solve_all(|sol| {
            found.push(sol.to_vec());
            true
        });
        prop_assert!(complete);
        found.sort();
        found.dedup();
        prop_assert_eq!(found.len(), oracle.len());
        prop_assert_eq!(found, oracle);
    }

    /// maximize_nonzero returns a solution with the maximal number of
    /// non-zero variables among all solutions.
    #[test]
    fn maximize_nonzero_is_optimal(csp in csp_strategy()) {
        let oracle = brute_force(&csp);
        let best_oracle = oracle
            .iter()
            .map(|s| s.iter().filter(|&&v| v != 0).count())
            .max();
        let mut search = build_search(&csp);
        let vars: Vec<VarId> = (0..csp.n).map(|i| VarId(i as u32)).collect();
        match search.maximize_nonzero(&vars, 0) {
            cp::Outcome::Solution { values, complete } => {
                prop_assert!(complete);
                let score = values.iter().filter(|&&v| v != 0).count();
                // The floor is max(1, _): solutions with zero non-zeros are
                // only reported when some variable can be non-zero.
                prop_assert_eq!(Some(score), best_oracle.filter(|&b| b >= 1));
            }
            cp::Outcome::Unsat => {
                prop_assert!(best_oracle.unwrap_or(0) == 0, "{best_oracle:?}");
            }
            cp::Outcome::Exhausted => prop_assert!(false),
        }
    }
}
