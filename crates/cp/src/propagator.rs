//! The propagator interface and the propagation engine.

use crate::store::{Store, VarId};

/// Result of one propagator invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Propagation {
    /// Domains are consistent as far as this propagator can tell.
    Stable,
    /// The constraint is violated: the search must backtrack.
    Conflict,
}

/// A constraint's filtering algorithm. Implementations prune domains
/// through the [`Store`] API; the engine re-invokes a propagator whenever
/// one of its watched variables changes.
pub trait Propagator {
    /// Variables whose changes should wake this propagator. An empty list
    /// means "wake on every change" (used by cheap global constraints).
    fn watches(&self) -> Vec<VarId>;

    /// Prunes; returns [`Propagation::Conflict`] when the constraint
    /// cannot be satisfied. Pruning that empties a domain is also reported
    /// by the store itself.
    fn propagate(&mut self, store: &mut Store) -> Propagation;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "propagator"
    }
}

/// The propagation engine: owns the propagators and their watch lists.
#[derive(Default)]
pub struct Engine {
    propagators: Vec<Box<dyn Propagator>>,
    /// watch_lists[var] = propagator indices.
    watch_lists: Vec<Vec<u32>>,
    /// Propagators woken by every change.
    global_watchers: Vec<u32>,
}

impl Engine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a propagator (after all its variables exist).
    pub fn post(&mut self, store: &Store, p: Box<dyn Propagator>) {
        let idx = self.propagators.len() as u32;
        let watches = p.watches();
        if watches.is_empty() {
            self.global_watchers.push(idx);
        } else {
            if self.watch_lists.len() < store.len() {
                self.watch_lists.resize(store.len(), Vec::new());
            }
            for w in watches {
                self.watch_lists[w.index()].push(idx);
            }
        }
        self.propagators.push(p);
    }

    /// Number of registered propagators.
    pub fn len(&self) -> usize {
        self.propagators.len()
    }

    /// True when no propagator is registered.
    pub fn is_empty(&self) -> bool {
        self.propagators.is_empty()
    }

    /// Runs propagation to a fixpoint. Returns false on conflict.
    pub fn propagate(&mut self, store: &mut Store) -> bool {
        // Seed: run everything once.
        let mut queue: Vec<u32> = (0..self.propagators.len() as u32).collect();
        let mut queued = vec![true; self.propagators.len()];
        let mut qi = 0;
        loop {
            while qi < queue.len() {
                let p = queue[qi];
                qi += 1;
                queued[p as usize] = false;
                match self.propagators[p as usize].propagate(store) {
                    Propagation::Conflict => return false,
                    Propagation::Stable => {
                        if store.failed() {
                            return false;
                        }
                    }
                }
                // Wake watchers of everything this propagator changed.
                for var in store.take_changed() {
                    self.wake(var, &mut queue, &mut queued);
                }
            }
            // External changes (e.g. a search decision) made before calling
            // propagate() are consumed by the seed; drain any stragglers.
            let stragglers = store.take_changed();
            if stragglers.is_empty() {
                return true;
            }
            for var in stragglers {
                self.wake(var, &mut queue, &mut queued);
            }
        }
    }

    fn wake(&self, var: u32, queue: &mut Vec<u32>, queued: &mut [bool]) {
        let lists: [&[u32]; 2] = [
            self.watch_lists
                .get(var as usize)
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
            &self.global_watchers,
        ];
        for &p in lists.into_iter().flatten() {
            if !queued[p as usize] {
                queued[p as usize] = true;
                queue.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::NotEqual;

    #[test]
    fn fixpoint_chains_inferences() {
        // x != y, y != z with x fixed and 2-value domains forces z = x.
        let mut store = Store::new();
        let x = store.new_var(1, 1);
        let y = store.new_var(1, 2);
        let z = store.new_var(1, 2);
        let mut eng = Engine::new();
        eng.post(&store, Box::new(NotEqual::new(x, y)));
        eng.post(&store, Box::new(NotEqual::new(y, z)));
        assert!(eng.propagate(&mut store));
        assert_eq!(store.dom(y).value(), 2);
        assert_eq!(store.dom(z).value(), 1);
    }

    #[test]
    fn conflict_is_reported() {
        let mut store = Store::new();
        let x = store.new_var(3, 3);
        let y = store.new_var(3, 3);
        let mut eng = Engine::new();
        eng.post(&store, Box::new(NotEqual::new(x, y)));
        assert!(!eng.propagate(&mut store));
    }
}
