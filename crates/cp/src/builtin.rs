//! Generic constraints shipped with the solver.
//!
//! The pattern models in `discovery` define their own global constraints
//! over DDG structure; these built-ins cover the generic parts (mutual
//! distinctness of component indices, coverage lower bounds used by the
//! branch-and-bound maximization) and give the test suite classic CSPs to
//! validate the kernel on.

use crate::propagator::{Propagation, Propagator};
use crate::store::{Store, VarId};

/// `x != y (+ offset)` — with value semantics `x ≠ y + offset`.
pub struct NotEqual {
    x: VarId,
    y: VarId,
    offset: i64,
}

impl NotEqual {
    pub fn new(x: VarId, y: VarId) -> Self {
        NotEqual { x, y, offset: 0 }
    }

    /// `x != y + offset` (n-queens diagonals, chain positions).
    pub fn with_offset(x: VarId, y: VarId, offset: i64) -> Self {
        NotEqual { x, y, offset }
    }
}

impl Propagator for NotEqual {
    fn watches(&self) -> Vec<VarId> {
        vec![self.x, self.y]
    }

    fn propagate(&mut self, store: &mut Store) -> Propagation {
        if store.dom(self.y).is_fixed() {
            let forbidden = store.dom(self.y).value() as i64 + self.offset;
            if forbidden >= 0 && !store.remove(self.x, forbidden as u32) {
                return Propagation::Conflict;
            }
        }
        if store.dom(self.x).is_fixed() {
            let forbidden = store.dom(self.x).value() as i64 - self.offset;
            if forbidden >= 0 && !store.remove(self.y, forbidden as u32) {
                return Propagation::Conflict;
            }
        }
        Propagation::Stable
    }

    fn name(&self) -> &str {
        "not-equal"
    }
}

/// All variables take pairwise distinct values, except those equal to the
/// optional `except` value (the pattern models' "0 = excluded" sentinel).
pub struct AllDifferent {
    vars: Vec<VarId>,
    except: Option<u32>,
}

impl AllDifferent {
    pub fn new(vars: Vec<VarId>) -> Self {
        AllDifferent { vars, except: None }
    }

    pub fn except(vars: Vec<VarId>, except: u32) -> Self {
        AllDifferent {
            vars,
            except: Some(except),
        }
    }
}

impl Propagator for AllDifferent {
    fn watches(&self) -> Vec<VarId> {
        self.vars.clone()
    }

    fn propagate(&mut self, store: &mut Store) -> Propagation {
        // Value-based filtering: each fixed value is pruned elsewhere.
        // (Arc-consistent matching filtering is overkill at our sizes.)
        for i in 0..self.vars.len() {
            let x = self.vars[i];
            if !store.dom(x).is_fixed() {
                continue;
            }
            let v = store.dom(x).value();
            if self.except == Some(v) {
                continue;
            }
            for &y in &self.vars {
                if y != x && !store.remove(y, v) {
                    return Propagation::Conflict;
                }
            }
        }
        Propagation::Stable
    }

    fn name(&self) -> &str {
        "all-different"
    }
}

/// At least `k` of the variables must end up non-zero. Used as the
/// branch-and-bound cut when maximizing pattern coverage: after finding a
/// solution with coverage `c`, the search raises the (shared) bound to
/// `c + 1` and keeps going.
pub struct NonZeroAtLeast {
    vars: Vec<VarId>,
    k: std::rc::Rc<std::cell::Cell<usize>>,
}

impl NonZeroAtLeast {
    pub fn new(vars: Vec<VarId>, k: usize) -> Self {
        NonZeroAtLeast {
            vars,
            k: std::rc::Rc::new(std::cell::Cell::new(k)),
        }
    }

    /// A propagator whose bound the search can raise mid-run.
    pub fn with_shared_bound(vars: Vec<VarId>, k: std::rc::Rc<std::cell::Cell<usize>>) -> Self {
        NonZeroAtLeast { vars, k }
    }
}

impl Propagator for NonZeroAtLeast {
    fn watches(&self) -> Vec<VarId> {
        self.vars.clone()
    }

    fn propagate(&mut self, store: &mut Store) -> Propagation {
        let k = self.k.get();
        let possibly_nonzero = self
            .vars
            .iter()
            .filter(|&&x| !(store.dom(x).is_fixed() && store.dom(x).value() == 0))
            .count();
        if possibly_nonzero < k {
            return Propagation::Conflict;
        }
        // When the bound is tight, every still-free variable must be
        // non-zero.
        if possibly_nonzero == k {
            for &x in &self.vars {
                if !store.dom(x).is_fixed() && !store.remove(x, 0) {
                    return Propagation::Conflict;
                }
            }
        }
        Propagation::Stable
    }

    fn name(&self) -> &str {
        "nonzero-at-least"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::Engine;

    #[test]
    fn alldiff_prunes_fixed_values() {
        let mut store = Store::new();
        let a = store.new_var(1, 1);
        let b = store.new_var(1, 2);
        let c = store.new_var(1, 3);
        let mut eng = Engine::new();
        eng.post(&store, Box::new(AllDifferent::new(vec![a, b, c])));
        assert!(eng.propagate(&mut store));
        assert_eq!(store.dom(b).value(), 2);
        assert_eq!(store.dom(c).value(), 3);
    }

    #[test]
    fn alldiff_except_zero_allows_repeats_of_zero() {
        let mut store = Store::new();
        let a = store.new_var(0, 0);
        let b = store.new_var(0, 0);
        let c = store.new_var(0, 1);
        let mut eng = Engine::new();
        eng.post(&store, Box::new(AllDifferent::except(vec![a, b, c], 0)));
        assert!(eng.propagate(&mut store));
        // Two zeros coexist; c keeps both values.
        assert_eq!(store.dom(c).size(), 2);
    }

    #[test]
    fn nonzero_at_least_forces_and_fails() {
        let mut store = Store::new();
        let a = store.new_var(0, 2);
        let b = store.new_var(0, 0);
        let mut eng = Engine::new();
        eng.post(&store, Box::new(NonZeroAtLeast::new(vec![a, b], 1)));
        assert!(eng.propagate(&mut store));
        assert!(!store.dom(a).contains(0), "a must become non-zero");

        let mut store2 = Store::new();
        let a2 = store2.new_var(0, 0);
        let b2 = store2.new_var(0, 0);
        let mut eng2 = Engine::new();
        eng2.post(&store2, Box::new(NonZeroAtLeast::new(vec![a2, b2], 1)));
        assert!(!eng2.propagate(&mut store2));
    }
}
