//! Cooperative cancellation: a cloneable token combining an explicit
//! cancel flag with an optional wall-clock deadline.
//!
//! The paper's tool bounds each *solver run* at 60 seconds; a production
//! service also needs *request-level* deadlines that span many solver
//! runs (and the tracing and decomposition around them). A [`CancelToken`]
//! is the carrier: the request owner creates one, every layer that loops
//! — the finder's iterations, a matcher's backtracking search, this
//! crate's DFS — polls [`CancelToken::is_expired`] at its natural
//! checkpoint and winds down with best-so-far results. Nothing is
//! preempted; cancellation is purely cooperative, so invariants hold at
//! every exit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation handle. Cloning is cheap and every clone
/// observes the same state; the token is `Send + Sync`.
#[derive(Clone, Debug)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    /// A token that never expires on its own (cancel-only).
    fn default() -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }
}

impl CancelToken {
    /// A token with no deadline; expires only via [`Self::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token expiring `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// A token expiring at `deadline`.
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Marks the token expired for every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancelled or past the deadline. Cheap enough to poll in
    /// inner loops (one relaxed load; the clock is read only when a
    /// deadline is set).
    pub fn is_expired(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The explicit-cancel flag alone — one relaxed load, never a clock
    /// read. Inner loops that throttle clock polling still check this
    /// every iteration so an explicit [`Self::cancel`] stops them
    /// immediately.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The wall-clock deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_expired());
        assert!(t.deadline().is_none());
        assert!(t.remaining().is_none());
        u.cancel();
        assert!(t.is_expired(), "cancel must reach every clone");
    }

    #[test]
    fn cancel_flag_is_separate_from_the_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_expired(), "deadline passed");
        assert!(!t.is_cancelled(), "but nobody cancelled explicitly");
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_expired());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_expired());
        assert!(far.remaining().unwrap() > Duration::from_secs(3590));
    }
}
