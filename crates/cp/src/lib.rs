//! `cp` — a finite-domain constraint solver.
//!
//! The paper implements its pattern definitions "as combinatorial models
//! with finite-domain variables and constraints" in MiniZinc and matches
//! them with the Chuffed solver under a 60-second budget (§5, §6). This
//! crate is the reproduction's stand-in: a small but real CP kernel —
//!
//! * integer variables with bitset domains ([`Store`]),
//! * a propagation engine with per-variable watch lists and a trail for
//!   chronological backtracking,
//! * user-defined [`Propagator`]s (the pattern models in the `discovery`
//!   crate are custom global constraints over DDG structure),
//! * depth-first [`Search`] with first-fail branching, solution
//!   enumeration, maximization of non-zero coverage (the pattern models
//!   maximize the number of nodes assigned to components), and a time
//!   budget with best-so-far semantics.
//!
//! The solver is deliberately general: nothing in this crate knows about
//! DDGs or patterns, and the unit tests exercise it on classic CSPs
//! (n-queens, graph coloring).

pub mod builtin;
pub mod cancel;
pub mod domain;
pub mod propagator;
pub mod search;
pub mod store;

pub use builtin::{AllDifferent, NonZeroAtLeast, NotEqual};
pub use cancel::CancelToken;
pub use domain::Domain;
pub use propagator::{Propagation, Propagator};
pub use search::{Outcome, Search, SearchStats};
pub use store::{Store, VarId};
