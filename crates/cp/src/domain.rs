//! Bitset domains over small non-negative integer ranges.

/// The set of values an integer variable may still take. Values are `u32`s
/// bounded by the domain's initial range; pattern models use values
/// `0..=n` where 0 conventionally means "excluded from the pattern".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Domain {
    words: Box<[u64]>,
    /// Cached population count.
    size: u32,
}

impl Domain {
    /// The full range `lo..=hi`.
    pub fn range(lo: u32, hi: u32) -> Domain {
        assert!(lo <= hi, "empty initial domain");
        let nwords = (hi as usize + 64) / 64;
        let mut words = vec![0u64; nwords].into_boxed_slice();
        for v in lo..=hi {
            words[(v / 64) as usize] |= 1 << (v % 64);
        }
        Domain {
            words,
            size: hi - lo + 1,
        }
    }

    /// A singleton domain.
    pub fn constant(v: u32) -> Domain {
        let mut d = Domain::range(v, v);
        d.size = 1;
        d
    }

    /// Number of remaining values.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// True when exactly one value remains.
    #[inline]
    pub fn is_fixed(&self) -> bool {
        self.size == 1
    }

    /// True when no value remains (conflict).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let w = (v / 64) as usize;
        w < self.words.len() && self.words[w] & (1 << (v % 64)) != 0
    }

    /// The smallest remaining value. Panics when empty.
    pub fn min(&self) -> u32 {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return i as u32 * 64 + w.trailing_zeros();
            }
        }
        panic!("min of empty domain")
    }

    /// The largest remaining value. Panics when empty.
    pub fn max(&self) -> u32 {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return i as u32 * 64 + 63 - w.leading_zeros();
            }
        }
        panic!("max of empty domain")
    }

    /// The fixed value; panics unless [`Self::is_fixed`].
    pub fn value(&self) -> u32 {
        assert!(self.is_fixed(), "value() on unfixed domain");
        self.min()
    }

    /// Removes `v`; returns true when the domain changed.
    pub fn remove(&mut self, v: u32) -> bool {
        let w = (v / 64) as usize;
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (v % 64);
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.size -= 1;
            true
        } else {
            false
        }
    }

    /// Reduces to the singleton `{v}`; returns true when the domain
    /// changed. The caller must ensure `v` is currently contained.
    pub fn assign(&mut self, v: u32) -> bool {
        debug_assert!(self.contains(v));
        if self.is_fixed() {
            return false;
        }
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.words[(v / 64) as usize] = 1 << (v % 64);
        self.size = 1;
        true
    }

    /// Iterates over the remaining values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_membership() {
        let d = Domain::range(2, 6);
        assert_eq!(d.size(), 5);
        assert!(d.contains(2) && d.contains(6));
        assert!(!d.contains(1) && !d.contains(7));
        assert_eq!(d.min(), 2);
        assert_eq!(d.max(), 6);
    }

    #[test]
    fn remove_and_assign() {
        let mut d = Domain::range(0, 70);
        assert!(d.remove(64));
        assert!(!d.remove(64));
        assert_eq!(d.size(), 70);
        assert!(d.assign(5));
        assert!(d.is_fixed());
        assert_eq!(d.value(), 5);
        assert!(!d.assign(5), "assigning a fixed domain is a no-op");
    }

    #[test]
    fn emptying_detected() {
        let mut d = Domain::range(3, 3);
        assert!(d.is_fixed());
        assert!(d.remove(3));
        assert!(d.is_empty());
    }

    #[test]
    fn iteration() {
        let mut d = Domain::range(0, 5);
        d.remove(1);
        d.remove(4);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn constant_domain() {
        let d = Domain::constant(9);
        assert!(d.is_fixed());
        assert_eq!(d.value(), 9);
    }
}
