//! The variable store: domains plus a trail for backtracking.

use crate::domain::Domain;

/// Index of a decision variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Domains with copy-on-first-touch trailing per decision level.
///
/// Domains are small bitsets, so saving a whole domain the first time it is
/// touched at each level is cheaper and far simpler than fine-grained
/// deltas — the classic trade-off Chuffed-style solvers also exploit for
/// set-like state.
pub struct Store {
    domains: Vec<Domain>,
    /// Decision level at which each domain was last saved.
    saved_at: Vec<u32>,
    /// (var, previous domain, previous saved_at).
    trail: Vec<(u32, Domain, u32)>,
    /// Trail boundary per level.
    trail_lim: Vec<usize>,
    /// Variables whose domain changed since the queue was last drained.
    changed: Vec<u32>,
    /// Whether some domain was emptied (conflict).
    failed: bool,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    pub fn new() -> Store {
        Store {
            domains: Vec::new(),
            saved_at: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            changed: Vec::new(),
            failed: false,
        }
    }

    /// Creates a variable with domain `lo..=hi`.
    pub fn new_var(&mut self, lo: u32, hi: u32) -> VarId {
        let id = VarId(self.domains.len() as u32);
        self.domains.push(Domain::range(lo, hi));
        self.saved_at.push(0);
        id
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when no variable exists.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Current decision level (0 = root).
    pub fn level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// The domain of `x`.
    #[inline]
    pub fn dom(&self, x: VarId) -> &Domain {
        &self.domains[x.index()]
    }

    /// True when the store is in a failed state.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Opens a new decision level.
    pub fn push_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Undoes all changes of the current level.
    pub fn pop_level(&mut self) {
        let lim = self.trail_lim.pop().expect("pop at root level");
        while self.trail.len() > lim {
            let (var, dom, saved) = self.trail.pop().unwrap();
            self.domains[var as usize] = dom;
            self.saved_at[var as usize] = saved;
        }
        self.failed = false;
        self.changed.clear();
    }

    fn save(&mut self, x: VarId) {
        let level = self.level();
        // Level 0 changes are permanent: no trailing needed.
        if level > 0 && self.saved_at[x.index()] != level {
            self.trail.push((
                x.0,
                self.domains[x.index()].clone(),
                self.saved_at[x.index()],
            ));
            self.saved_at[x.index()] = level;
        }
    }

    /// Removes `v` from `x`'s domain. Returns false on conflict (domain
    /// wiped out).
    pub fn remove(&mut self, x: VarId, v: u32) -> bool {
        if !self.dom(x).contains(v) {
            return true;
        }
        self.save(x);
        self.domains[x.index()].remove(v);
        if self.domains[x.index()].is_empty() {
            self.failed = true;
            return false;
        }
        self.changed.push(x.0);
        true
    }

    /// Fixes `x := v`. Returns false on conflict (`v` not in the domain).
    pub fn assign(&mut self, x: VarId, v: u32) -> bool {
        if !self.dom(x).contains(v) {
            self.failed = true;
            return false;
        }
        if self.dom(x).is_fixed() {
            return true;
        }
        self.save(x);
        self.domains[x.index()].assign(v);
        self.changed.push(x.0);
        true
    }

    /// Drains the queue of changed variables.
    pub(crate) fn take_changed(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.changed)
    }

    /// All variables, in creation order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        (0..self.domains.len() as u32).map(VarId)
    }

    /// Snapshot of the current (fully fixed) assignment.
    pub fn solution(&self) -> Vec<u32> {
        self.domains.iter().map(|d| d.value()).collect()
    }

    /// True when every variable is fixed.
    pub fn all_fixed(&self) -> bool {
        self.domains.iter().all(|d| d.is_fixed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_restores_domains() {
        let mut s = Store::new();
        let x = s.new_var(0, 9);
        let y = s.new_var(0, 3);
        s.push_level();
        assert!(s.remove(x, 5));
        assert!(s.assign(y, 2));
        assert_eq!(s.dom(x).size(), 9);
        assert!(s.dom(y).is_fixed());
        s.pop_level();
        assert_eq!(s.dom(x).size(), 10);
        assert_eq!(s.dom(y).size(), 4);
    }

    #[test]
    fn nested_levels() {
        let mut s = Store::new();
        let x = s.new_var(0, 4);
        s.push_level();
        s.remove(x, 0);
        s.push_level();
        s.remove(x, 1);
        s.remove(x, 2);
        assert_eq!(s.dom(x).size(), 2);
        s.pop_level();
        assert_eq!(s.dom(x).size(), 4);
        s.pop_level();
        assert_eq!(s.dom(x).size(), 5);
    }

    #[test]
    fn conflict_on_wipeout() {
        let mut s = Store::new();
        let x = s.new_var(1, 1);
        s.push_level();
        assert!(!s.remove(x, 1));
        assert!(s.failed());
        s.pop_level();
        assert!(!s.failed());
        assert_eq!(s.dom(x).value(), 1);
    }

    #[test]
    fn root_level_changes_are_permanent() {
        let mut s = Store::new();
        let x = s.new_var(0, 5);
        s.remove(x, 3); // at root
        s.push_level();
        s.remove(x, 4);
        s.pop_level();
        assert!(!s.dom(x).contains(3), "root change survives backtracking");
        assert!(s.dom(x).contains(4));
    }

    #[test]
    fn assign_outside_domain_fails() {
        let mut s = Store::new();
        let x = s.new_var(0, 2);
        s.push_level();
        assert!(!s.assign(x, 7));
        assert!(s.failed());
    }
}
