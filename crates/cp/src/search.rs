//! Depth-first search with propagation, branch-and-bound maximization, and
//! a time budget.

use crate::builtin::NonZeroAtLeast;
use crate::cancel::CancelToken;
use crate::propagator::{Engine, Propagator};
use crate::store::{Store, VarId};
use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Search statistics (nodes = decisions taken).
#[derive(Clone, Copy, Default, Debug)]
pub struct SearchStats {
    pub nodes: u64,
    pub solutions: u64,
    pub max_depth: u32,
    /// Fixpoint propagation rounds run (one per decision plus the root).
    pub propagations: u64,
    /// Decision levels undone.
    pub backtracks: u64,
    /// Budget checks that fired on the wall-clock deadline or a cancel
    /// token (node-limit exhaustion is not counted here).
    pub deadline_prunes: u64,
}

/// Result of a search run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A (first or best) solution, as the values of all variables in
    /// creation order, plus whether the search space was fully explored.
    Solution { values: Vec<u32>, complete: bool },
    /// No solution exists (fully explored).
    Unsat,
    /// Budget exhausted before any solution was found.
    Exhausted,
}

impl Outcome {
    /// The solution values, if any.
    pub fn values(&self) -> Option<&[u32]> {
        match self {
            Outcome::Solution { values, .. } => Some(values),
            _ => None,
        }
    }
}

enum Walk {
    /// Subtree fully explored.
    Done,
    /// Stop everything (budget exhausted or callback stop).
    Abort,
}

/// Search nodes between wall-clock reads in [`Search::out_of_budget`].
/// A power of two so the check is one mask; 64 nodes take microseconds,
/// so deadlines still land well within any realistic budget.
const CLOCK_STRIDE: u64 = 64;

/// A configured solver run over one model.
pub struct Search {
    pub store: Store,
    pub engine: Engine,
    deadline: Option<Instant>,
    node_limit: u64,
    cancel: Option<CancelToken>,
    /// Branch on 0 (the "excluded" sentinel) only after all other values.
    pub zero_last: bool,
    stats: SearchStats,
    /// First variable (in creation order) not yet fixed at the current
    /// decision level — [`Search::pick_var`] scans from here instead of
    /// from 0. Saved and restored around each decision level, since
    /// backtracking un-fixes domains.
    cursor: u32,
    /// Per-depth value buffers, reused across all nodes at that depth so
    /// branching allocates nothing once the search is warm.
    scratch: Vec<Vec<u32>>,
}

impl Search {
    pub fn new(store: Store, engine: Engine) -> Self {
        Search {
            store,
            engine,
            deadline: None,
            node_limit: u64::MAX,
            cancel: None,
            zero_last: true,
            stats: SearchStats::default(),
            cursor: 0,
            scratch: Vec::new(),
        }
    }

    /// Limits wall-clock time (the paper uses 60 s per solver run).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Limits the number of search nodes.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = limit;
        self
    }

    /// Aborts (with best-so-far semantics, like [`Self::with_budget`])
    /// once `token` expires — the hook request-level deadlines thread
    /// through.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Statistics of the last run.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    fn out_of_budget(&mut self) -> bool {
        if self.stats.nodes >= self.node_limit {
            return true;
        }
        // The explicit cancel flag is one relaxed load: poll it every
        // node so a request cancelled mid-search stops without waiting
        // out the clock stride.
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            self.stats.deadline_prunes += 1;
            return true;
        }
        // Clock reads are throttled to every CLOCK_STRIDE nodes. Node 0
        // always reads, so an already-expired budget aborts before any
        // work.
        if self.stats.nodes.is_multiple_of(CLOCK_STRIDE)
            && (self.deadline.is_some_and(|d| Instant::now() >= d)
                || self.cancel.as_ref().is_some_and(|c| c.is_expired()))
        {
            self.stats.deadline_prunes += 1;
            return true;
        }
        false
    }

    /// First-fail variable selection: smallest unfixed domain, lowest
    /// index on ties. The scan starts past the fixed prefix (advancing
    /// `self.cursor`) and stops early at a size-2 domain — the smallest
    /// an unfixed domain can be — so deep-in-the-tree decisions no
    /// longer rescan every variable. Selection is identical to the full
    /// scan: skipped prefix variables are fixed, and the first size-2
    /// domain found is exactly what the strict `<` comparison would
    /// keep.
    fn pick_var(&mut self) -> Option<VarId> {
        let n = self.store.len() as u32;
        while self.cursor < n && self.store.dom(VarId(self.cursor)).is_fixed() {
            self.cursor += 1;
        }
        let mut best: Option<(u32, VarId)> = None;
        for x in (self.cursor..n).map(VarId) {
            let d = self.store.dom(x);
            if !d.is_fixed() {
                let sz = d.size();
                if best.is_none_or(|(bs, _)| sz < bs) {
                    best = Some((sz, x));
                    if sz == 2 {
                        break;
                    }
                }
            }
        }
        best.map(|(_, x)| x)
    }

    /// Fills `buf` with `x`'s values in branching order (ascending, zero
    /// rotated to the back when `zero_last`). The buffer comes from the
    /// per-depth scratch pool — no per-node allocation.
    fn value_order(&self, x: VarId, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.store.dom(x).iter());
        if self.zero_last && buf.first() == Some(&0) {
            buf.rotate_left(1);
        }
    }

    /// Finds the first solution.
    pub fn solve_first(&mut self) -> Outcome {
        let mut found: Option<Vec<u32>> = None;
        let complete = {
            let walk = self.dfs(&mut |sol| {
                found = Some(sol.to_vec());
                false // stop at first
            });
            matches!(walk, Walk::Done)
        };
        match found {
            Some(values) => Outcome::Solution { values, complete },
            None if complete => Outcome::Unsat,
            None => Outcome::Exhausted,
        }
    }

    /// Enumerates solutions until the callback returns `false` or the
    /// budget runs out. Returns whether the space was fully explored.
    pub fn solve_all(&mut self, mut on_solution: impl FnMut(&[u32]) -> bool) -> bool {
        matches!(self.dfs(&mut |s| on_solution(s)), Walk::Done)
    }

    /// Maximizes the number of `objective` variables that end non-zero
    /// (the coverage objective of every pattern model). Returns the best
    /// solution found and whether optimality was proven.
    pub fn maximize_nonzero(&mut self, objective: &[VarId], floor: usize) -> Outcome {
        let bound = Rc::new(Cell::new(floor.max(1)));
        self.engine.post(
            &self.store,
            Box::new(NonZeroAtLeast::with_shared_bound(
                objective.to_vec(),
                Rc::clone(&bound),
            )),
        );
        let mut best: Option<Vec<u32>> = None;
        let objective = objective.to_vec();
        let complete = {
            let walk = self.dfs(&mut |sol| {
                let score = objective.iter().filter(|x| sol[x.index()] != 0).count();
                bound.set(score + 1);
                best = Some(sol.to_vec());
                true // keep improving
            });
            matches!(walk, Walk::Done)
        };
        match best {
            Some(values) => Outcome::Solution { values, complete },
            None if complete => Outcome::Unsat,
            None => Outcome::Exhausted,
        }
    }

    /// The DFS core. `on_solution` returns false to stop the search.
    fn dfs(&mut self, on_solution: &mut dyn FnMut(&[u32]) -> bool) -> Walk {
        let before = self.stats;
        let mut span = obs::span("cp.search");
        self.cursor = 0;
        self.stats.propagations += 1;
        let walk = if self.engine.propagate(&mut self.store) {
            self.walk(0, on_solution)
        } else {
            Walk::Done
        };
        if obs::enabled() {
            let d = self.stats;
            obs::counter("cp.decisions").add(d.nodes - before.nodes);
            obs::counter("cp.propagations").add(d.propagations - before.propagations);
            obs::counter("cp.backtracks").add(d.backtracks - before.backtracks);
            obs::counter("cp.deadline_prunes").add(d.deadline_prunes - before.deadline_prunes);
            obs::counter("cp.solutions").add(d.solutions - before.solutions);
            span.arg("decisions", obs::ArgValue::U64(d.nodes - before.nodes));
            span.arg(
                "solutions",
                obs::ArgValue::U64(d.solutions - before.solutions),
            );
            span.arg("max_depth", obs::ArgValue::U64(d.max_depth as u64));
        }
        walk
    }

    fn walk(&mut self, depth: u32, on_solution: &mut dyn FnMut(&[u32]) -> bool) -> Walk {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let Some(var) = self.pick_var() else {
            self.stats.solutions += 1;
            let sol = self.store.solution();
            return if on_solution(&sol) {
                Walk::Done
            } else {
                Walk::Abort
            };
        };
        // The fixed-prefix cursor valid at this level's store state:
        // children advance it past variables they fix, and backtracking
        // un-fixes them, so restore after every pop back to this level.
        let saved_cursor = self.cursor;
        if self.scratch.len() <= depth as usize {
            self.scratch.push(Vec::new());
        }
        let mut vals = std::mem::take(&mut self.scratch[depth as usize]);
        self.value_order(var, &mut vals);
        for &v in &vals {
            if self.out_of_budget() {
                self.scratch[depth as usize] = vals;
                return Walk::Abort;
            }
            self.stats.nodes += 1;
            self.store.push_level();
            let feasible = self.store.assign(var, v) && {
                self.stats.propagations += 1;
                self.engine.propagate(&mut self.store)
            };
            if feasible {
                if let Walk::Abort = self.walk(depth + 1, on_solution) {
                    self.stats.backtracks += 1;
                    self.store.pop_level();
                    self.cursor = saved_cursor;
                    self.scratch[depth as usize] = vals;
                    return Walk::Abort;
                }
            }
            self.stats.backtracks += 1;
            self.store.pop_level();
            self.cursor = saved_cursor;
        }
        self.scratch[depth as usize] = vals;
        Walk::Done
    }
}

/// Convenience: builds a search from closures that construct the model.
pub fn search_with(build: impl FnOnce(&mut Store) -> Vec<Box<dyn Propagator>>) -> Search {
    let mut store = Store::new();
    let props = build(&mut store);
    let mut engine = Engine::new();
    for p in props {
        engine.post(&store, p);
    }
    Search::new(store, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{AllDifferent, NotEqual};

    /// n-queens: a classic kernel validation.
    fn queens(n: u32) -> Search {
        search_with(|store| {
            let qs: Vec<VarId> = (0..n).map(|_| store.new_var(0, n - 1)).collect();
            let mut props: Vec<Box<dyn Propagator>> = vec![Box::new(AllDifferent::new(qs.clone()))];
            for i in 0..n as usize {
                for j in (i + 1)..n as usize {
                    let d = (j - i) as i64;
                    props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], d)));
                    props.push(Box::new(NotEqual::with_offset(qs[i], qs[j], -d)));
                }
            }
            props
        })
    }

    fn is_valid_queens(sol: &[u32]) -> bool {
        let n = sol.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if sol[i] == sol[j] {
                    return false;
                }
                if (sol[i] as i64 - sol[j] as i64).abs() == (j - i) as i64 {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn solves_eight_queens() {
        let mut s = queens(8);
        let out = s.solve_first();
        let values = out.values().expect("8-queens is satisfiable");
        assert!(is_valid_queens(values));
    }

    #[test]
    fn proves_three_queens_unsat() {
        let mut s = queens(3);
        assert_eq!(s.solve_first(), Outcome::Unsat);
    }

    #[test]
    fn counts_all_six_queens_solutions() {
        let mut s = queens(6);
        let mut count = 0;
        let complete = s.solve_all(|sol| {
            assert!(is_valid_queens(sol));
            count += 1;
            true
        });
        assert!(complete);
        assert_eq!(count, 4, "6-queens has exactly 4 solutions");
    }

    #[test]
    fn maximize_nonzero_finds_optimum() {
        // Three 0/1 vars, x0 + x1 <= 1 via NotEqual on non-zero... encode:
        // x0 != x1 when both non-zero is hard with these built-ins, so use
        // a simpler model: x0 in {0,1}, x1 in {0}, x2 in {0,1}; maximum
        // non-zero count is 2.
        let mut s = search_with(|store| {
            store.new_var(0, 1);
            store.new_var(0, 0);
            store.new_var(0, 1);
            vec![]
        });
        let vars: Vec<VarId> = (0..3).map(VarId).collect();
        match s.maximize_nonzero(&vars, 1) {
            Outcome::Solution { values, complete } => {
                assert!(complete);
                assert_eq!(values.iter().filter(|&&v| v != 0).count(), 2);
            }
            other => panic!("expected solution, got {other:?}"),
        }
    }

    #[test]
    fn node_limit_aborts() {
        let mut s = queens(10).with_node_limit(3);
        // With only 3 nodes we cannot finish 10-queens.
        let out = s.solve_first();
        assert_eq!(out, Outcome::Exhausted);
        assert!(s.stats().nodes <= 4);
    }

    #[test]
    fn budget_zero_aborts_quickly() {
        // Node 0 always reads the clock despite the stride throttle, so
        // an already-expired budget aborts before any decision is taken.
        let mut s = queens(12).with_budget(Duration::from_millis(0));
        let out = s.solve_first();
        assert_eq!(out, Outcome::Exhausted);
        assert_eq!(s.stats().nodes, 0, "no decision under an expired budget");
    }

    #[test]
    fn expired_token_deadline_aborts_despite_clock_throttling() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        let mut s = queens(12).with_cancel(token);
        assert_eq!(s.solve_first(), Outcome::Exhausted);
        assert_eq!(s.stats().nodes, 0);
    }

    #[test]
    fn mid_search_deadline_lands_within_the_clock_stride() {
        // 11-queens full enumeration takes far longer than 5 ms, so the
        // deadline must fire mid-search — at a throttled check, not the
        // first one — and surface as an incomplete exploration.
        let mut s = queens(11).with_budget(Duration::from_millis(5));
        let complete = s.solve_all(|_| true);
        assert!(!complete, "the budget expired mid-enumeration");
        assert!(s.stats().deadline_prunes > 0);
    }

    #[test]
    fn cancelled_token_aborts_like_an_exhausted_budget() {
        let token = CancelToken::new();
        token.cancel();
        let mut s = queens(12).with_cancel(token);
        assert_eq!(s.solve_first(), Outcome::Exhausted);
    }

    #[test]
    fn live_token_does_not_perturb_the_search() {
        let mut s = queens(8).with_cancel(CancelToken::new());
        let out = s.solve_first();
        assert!(is_valid_queens(out.values().expect("8-queens solvable")));
    }

    #[test]
    fn maximize_keeps_best_so_far_when_the_token_expires_mid_search() {
        // Cancel from inside the solution callback: the improving search
        // must return the solution it already has, marked incomplete —
        // the best-so-far contract request deadlines rely on.
        let token = CancelToken::new();
        let mut s = search_with(|store| {
            for _ in 0..6 {
                store.new_var(0, 1);
            }
            vec![]
        })
        .with_cancel(token.clone());
        let vars: Vec<VarId> = (0..6).map(VarId).collect();
        let bound = Rc::new(Cell::new(1usize));
        s.engine.post(
            &s.store,
            Box::new(NonZeroAtLeast::with_shared_bound(
                vars.clone(),
                Rc::clone(&bound),
            )),
        );
        let mut best: Option<Vec<u32>> = None;
        let complete = s.solve_all(|sol| {
            best = Some(sol.to_vec());
            token.cancel(); // a deadline firing mid-run
            true
        });
        assert!(!complete, "a cancelled search is incomplete");
        assert!(best.is_some(), "the first solution survives cancellation");
    }

    #[test]
    fn zero_last_value_ordering() {
        let mut s = search_with(|store| {
            store.new_var(0, 3);
            vec![]
        });
        // First solution should pick a non-zero value first.
        let out = s.solve_first();
        assert_eq!(out.values().unwrap()[0], 1);
    }
}
