//! Human-readable pretty printing of IR programs.
//!
//! Useful when debugging lowering and when inspecting the synthetic
//! Starbench ports; the format is close to the `minc` surface syntax.

use crate::expr::Expr;
use crate::func::{Function, Program};
use crate::stmt::Stmt;
use std::fmt::Write;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", p.name);
    for g in &p.globals {
        let _ = writeln!(out, "global {} {}[{}];", g.elem, g.name, g.len);
    }
    if p.n_mutexes > 0 {
        let _ = writeln!(out, "// {} mutex(es)", p.n_mutexes);
    }
    if p.n_barriers > 0 {
        let _ = writeln!(out, "// {} barrier(s)", p.n_barriers);
    }
    for f in &p.functions {
        out.push('\n');
        out.push_str(&function_to_string(p, f));
    }
    out
}

/// Renders one function.
pub fn function_to_string(p: &Program, f: &Function) -> String {
    let mut out = String::new();
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".into());
    let params: Vec<String> = f
        .params
        .iter()
        .map(|pa| format!("{} {}", pa.ty, pa.name))
        .collect();
    let _ = writeln!(out, "{} {}({}) {{", ret, f.name, params.join(", "));
    for s in &f.body {
        write_stmt(p, f, s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_stmt(p: &Program, f: &Function, s: &Stmt, depth: usize, out: &mut String) {
    indent(out, depth);
    match s {
        Stmt::Assign { var, value, .. } => {
            let _ = writeln!(out, "{} = {};", f.slot(*var).0, expr_str(p, f, value));
        }
        Stmt::Store {
            arr, idx, value, ..
        } => {
            let _ = writeln!(
                out,
                "{}[{}] = {};",
                p.global(*arr).name,
                expr_str(p, f, idx),
                expr_str(p, f, value)
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(p, f, cond));
            for s in then_body {
                write_stmt(p, f, s, depth + 1, out);
            }
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("} else {\n");
                for s in else_body {
                    write_stmt(p, f, s, depth + 1, out);
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            id,
            var,
            from,
            to,
            step,
            body,
            ..
        } => {
            let v = f.slot(*var).0;
            let _ = writeln!(
                out,
                "for ({v} = {}; {v} < {}; {v} += {step}) {{ // {id}",
                expr_str(p, f, from),
                expr_str(p, f, to)
            );
            for s in body {
                write_stmt(p, f, s, depth + 1, out);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While { id, cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{ // {id}", expr_str(p, f, cond));
            for s in body {
                write_stmt(p, f, s, depth + 1, out);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Expr { expr } => {
            let _ = writeln!(out, "{};", expr_str(p, f, expr));
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr_str(p, f, e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Spawn {
            func, args, handle, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(p, f, a)).collect();
            let _ = writeln!(
                out,
                "{} = spawn {}({});",
                f.slot(*handle).0,
                p.function(*func).name,
                args.join(", ")
            );
        }
        Stmt::Join { handle, .. } => {
            let _ = writeln!(out, "join {};", expr_str(p, f, handle));
        }
        Stmt::Barrier { bar, .. } => {
            let _ = writeln!(out, "barrier({bar});");
        }
        Stmt::Lock { mutex, .. } => {
            let _ = writeln!(out, "lock({mutex});");
        }
        Stmt::Unlock { mutex, .. } => {
            let _ = writeln!(out, "unlock({mutex});");
        }
        Stmt::Output { arr, .. } => {
            let _ = writeln!(out, "output({});", p.global(*arr).name);
        }
    }
}

/// Renders one expression.
pub fn expr_str(p: &Program, f: &Function, e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Bool(v) => v.to_string(),
        Expr::Var(v) => f.slot(*v).0.to_string(),
        Expr::Load { arr, idx, .. } => {
            format!("{}[{}]", p.global(*arr).name, expr_str(p, f, idx))
        }
        Expr::Un { op, a, .. } => format!("{}({})", op.label(), expr_str(p, f, a)),
        Expr::Bin { op, a, b, .. } => {
            format!(
                "({} {} {})",
                expr_str(p, f, a),
                op.label(),
                expr_str(p, f, b)
            )
        }
        Expr::Intr { op, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(p, f, a)).collect();
            format!("{}({})", op.label(), args.join(", "))
        }
        Expr::Call {
            f: callee, args, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(p, f, a)).collect();
            format!("{}({})", p.function(*callee).name, args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FnBuilder, ProgramBuilder};
    use crate::ops::BinOp;
    use crate::types::Type;

    #[test]
    fn renders_a_loop_program() {
        let mut pb = ProgramBuilder::new("demo");
        let out_arr = pb.global("out", Type::F64, 4);
        let mut f = pb.function("main", vec![("n", Type::I64)], None);
        f.for_loop("i", Expr::Int(0), Expr::Var(VarId(0)), |f, i| {
            let v = f.bin(BinOp::FMul, Expr::Float(2.0), Expr::Float(3.0));
            vec![FnBuilder::stmt_store(out_arr, Expr::Var(i), v)]
        });
        let main = f.finish();
        let p = pb.finish(main);
        let text = program_to_string(&p);
        assert!(text.contains("global f64 out[4];"));
        assert!(text.contains("void main(i64 n)"));
        assert!(text.contains("for (i = 0; i < n; i += 1)"));
        assert!(text.contains("out[i] = (2.0 fmul 3.0);"));
    }

    use crate::ids::VarId;

    #[test]
    fn renders_threading() {
        let mut pb = ProgramBuilder::new("thr");
        let worker = crate::ids::FnId(1);
        let mut main = pb.function("main", vec![], None);
        let h = main.local("h", Type::I64);
        main.push(Stmt::Spawn {
            func: worker,
            args: vec![Expr::Int(0)],
            handle: h,
            loc: crate::loc::Loc::NONE,
        });
        main.push(Stmt::Join {
            handle: Expr::Var(h),
            loc: crate::loc::Loc::NONE,
        });
        let main_id = main.finish();
        let w = pb.function("worker", vec![("tid", Type::I64)], None);
        w.finish();
        let p = pb.finish(main_id);
        let text = program_to_string(&p);
        assert!(text.contains("h = spawn worker(0);"));
        assert!(text.contains("join h;"));
    }
}
