//! Functions, global storage, and whole programs.

use crate::ids::{ArrId, FnId, LoopId, VarId};
use crate::loc::Loc;
use crate::stmt::Stmt;
use crate::types::Type;
use serde::{Deserialize, Serialize};

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// A local variable declaration. Variable slots within a frame are numbered
/// params-first, locals-after, so [`VarId`] indexes directly into the frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Local {
    pub name: String,
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub id: FnId,
    pub name: String,
    pub params: Vec<Param>,
    pub locals: Vec<Local>,
    pub ret: Option<Type>,
    pub body: Vec<Stmt>,
    pub loc: Loc,
}

impl Function {
    /// Total number of variable slots in a frame of this function.
    pub fn slot_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// Name and type of a variable slot.
    pub fn slot(&self, var: VarId) -> (&str, Type) {
        let i = var.index();
        if i < self.params.len() {
            (&self.params[i].name, self.params[i].ty)
        } else {
            let l = &self.locals[i - self.params.len()];
            (&l.name, l.ty)
        }
    }
}

/// A global array — the IR's only shared mutable storage, standing in for
/// the heap and globals of the legacy C programs. Element type is uniform;
/// multidimensional data is index-flattened exactly as the C sources do,
/// which is what makes subscript arithmetic visible to the DDG as *memory
/// address calculation*.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GlobalArray {
    pub id: ArrId,
    pub name: String,
    pub elem: Type,
    /// Default length; the host can resize before a run (program inputs).
    pub len: usize,
}

/// A whole program: the unit of instrumentation and tracing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub name: String,
    pub functions: Vec<Function>,
    pub globals: Vec<GlobalArray>,
    /// Number of mutex objects.
    pub n_mutexes: usize,
    /// Number of barrier objects; participant counts are a run-time
    /// configuration (legacy code sizes barriers by `nproc`).
    pub n_barriers: usize,
    /// Entry point.
    pub entry: FnId,
    /// Total number of static operations ([`crate::OpId`]s assigned).
    pub op_count: u32,
    /// Total number of static loops ([`LoopId`]s assigned).
    pub loop_count: u32,
    /// Source file names (index = `Loc::file`).
    pub files: Vec<String>,
    /// Full source text per file, for pattern reports (paper Fig. 6).
    pub sources: Vec<String>,
}

impl Program {
    /// Looks up a function by id.
    pub fn function(&self, id: FnId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global array by id.
    pub fn global(&self, id: ArrId) -> &GlobalArray {
        &self.globals[id.index()]
    }

    /// Looks up a global array by name.
    pub fn global_by_name(&self, name: &str) -> Option<&GlobalArray> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// All loop ids in the program (dense `0..loop_count`).
    pub fn loops(&self) -> impl Iterator<Item = LoopId> {
        (0..self.loop_count).map(LoopId)
    }

    /// The source line for a location, if available (for reports).
    pub fn source_line(&self, loc: Loc) -> Option<&str> {
        if !loc.is_some() {
            return None;
        }
        let src = self.sources.get(loc.file as usize)?;
        src.lines().nth(loc.line as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        Program {
            name: "tiny".into(),
            functions: vec![Function {
                id: FnId(0),
                name: "main".into(),
                params: vec![Param {
                    name: "n".into(),
                    ty: Type::I64,
                }],
                locals: vec![Local {
                    name: "x".into(),
                    ty: Type::F64,
                }],
                ret: None,
                body: vec![],
                loc: Loc::new(1, 1),
            }],
            globals: vec![GlobalArray {
                id: ArrId(0),
                name: "data".into(),
                elem: Type::F64,
                len: 16,
            }],
            n_mutexes: 0,
            n_barriers: 0,
            entry: FnId(0),
            op_count: 0,
            loop_count: 2,
            files: vec!["tiny.mc".into()],
            sources: vec!["line one\nline two\n".into()],
        }
    }

    #[test]
    fn slot_numbering_params_first() {
        let p = tiny_program();
        let f = p.function(FnId(0));
        assert_eq!(f.slot_count(), 2);
        assert_eq!(f.slot(VarId(0)), ("n", Type::I64));
        assert_eq!(f.slot(VarId(1)), ("x", Type::F64));
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny_program();
        assert!(p.function_by_name("main").is_some());
        assert!(p.function_by_name("absent").is_none());
        assert_eq!(p.global_by_name("data").unwrap().len, 16);
    }

    #[test]
    fn loops_iterates_dense_ids() {
        let p = tiny_program();
        let ids: Vec<_> = p.loops().collect();
        assert_eq!(ids, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn source_line_lookup() {
        let p = tiny_program();
        assert_eq!(p.source_line(Loc::new(2, 1)), Some("line two"));
        assert_eq!(p.source_line(Loc::NONE), None);
        assert_eq!(p.source_line(Loc::new(9, 1)), None);
    }
}
