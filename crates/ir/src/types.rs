//! Value types of the IR.
//!
//! The IR is deliberately small: 64-bit integers, 64-bit floats, and
//! booleans. This covers every computation in the analysed Starbench
//! benchmarks (pixel arithmetic, distance computation, digest mixing) while
//! keeping the tracer's shadow memory a simple dense map.

use serde::{Deserialize, Serialize};

/// Static type of an IR value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Type {
    /// 64-bit signed integer (also used for thread handles and indices).
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Boolean (result of comparisons and logical ops).
    Bool,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// A runtime value.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Value {
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl Value {
    /// The static type of this value.
    pub fn ty(self) -> Type {
        match self {
            Value::I64(_) => Type::I64,
            Value::F64(_) => Type::F64,
            Value::Bool(_) => Type::Bool,
        }
    }

    /// The all-zeros value of a type, used to initialize arrays and locals —
    /// matching C's zero-initialized statics, which the benchmarks rely on.
    pub fn zero(ty: Type) -> Value {
        match ty {
            Type::I64 => Value::I64(0),
            Type::F64 => Value::F64(0.0),
            Type::Bool => Value::Bool(false),
        }
    }

    /// Integer content, or an error message naming `ctx`.
    pub fn as_i64(self, ctx: &str) -> Result<i64, String> {
        match self {
            Value::I64(v) => Ok(v),
            other => Err(format!("{ctx}: expected i64, got {other:?}")),
        }
    }

    /// Float content, or an error message naming `ctx`.
    pub fn as_f64(self, ctx: &str) -> Result<f64, String> {
        match self {
            Value::F64(v) => Ok(v),
            other => Err(format!("{ctx}: expected f64, got {other:?}")),
        }
    }

    /// Boolean content, or an error message naming `ctx`.
    pub fn as_bool(self, ctx: &str) -> Result<bool, String> {
        match self {
            Value::Bool(v) => Ok(v),
            other => Err(format!("{ctx}: expected bool, got {other:?}")),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_reports_its_type() {
        assert_eq!(Value::I64(4).ty(), Type::I64);
        assert_eq!(Value::F64(1.5).ty(), Type::F64);
        assert_eq!(Value::Bool(true).ty(), Type::Bool);
    }

    #[test]
    fn zero_matches_type() {
        assert_eq!(Value::zero(Type::I64), Value::I64(0));
        assert_eq!(Value::zero(Type::F64), Value::F64(0.0));
        assert_eq!(Value::zero(Type::Bool), Value::Bool(false));
    }

    #[test]
    fn accessors_check_types() {
        assert_eq!(Value::I64(7).as_i64("t"), Ok(7));
        assert!(Value::I64(7).as_f64("t").is_err());
        assert!(Value::Bool(true).as_i64("t").is_err());
        assert_eq!(Value::Bool(true).as_bool("t"), Ok(true));
        let err = Value::F64(1.0).as_bool("ctx-name").unwrap_err();
        assert!(err.contains("ctx-name"));
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i64), Value::I64(3));
        assert_eq!(Value::from(2.5f64), Value::F64(2.5));
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::I64(-2).to_string(), "-2");
        assert_eq!(Type::F64.to_string(), "f64");
    }
}
