//! Static well-formedness and type checking.
//!
//! Programs produced by the builder or by the `minc` lowering are validated
//! before tracing: a malformed program would otherwise surface as a cryptic
//! interpreter error mid-run. The validator checks variable/array/function
//! references, operand types, call signatures, and the structural rules the
//! tracer relies on (`For` steps non-zero, entry function parameterless or
//! all-i64 so the host can supply inputs).

use crate::expr::Expr;
use crate::func::{Function, Program};
use crate::ops::BinOp;
use crate::stmt::Stmt;
use crate::types::Type;

/// A validation failure, with enough context to locate the offender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    pub function: String,
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in {}: {}", self.function, self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Validates a whole program. Returns all errors found (empty = valid).
pub fn validate(p: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    if p.entry.index() >= p.functions.len() {
        errors.push(ValidationError {
            function: "<program>".into(),
            message: format!("entry {:?} out of range", p.entry),
        });
    }
    for f in &p.functions {
        let mut cx = Ctx {
            p,
            f,
            errors: &mut errors,
        };
        cx.check_body(&f.body);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Ctx<'a> {
    p: &'a Program,
    f: &'a Function,
    errors: &'a mut Vec<ValidationError>,
}

impl<'a> Ctx<'a> {
    fn err(&mut self, message: String) {
        self.errors.push(ValidationError {
            function: self.f.name.clone(),
            message,
        });
    }

    fn var_type(&mut self, var: crate::VarId) -> Option<Type> {
        if var.index() < self.f.slot_count() {
            Some(self.f.slot(var).1)
        } else {
            self.err(format!("{var} out of range"));
            None
        }
    }

    fn check_body(&mut self, body: &[Stmt]) {
        for s in body {
            self.check_stmt(s);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { var, value, .. } => {
                let vt = self.var_type(*var);
                let et = self.type_of(value);
                if let (Some(vt), Some(et)) = (vt, et) {
                    if vt != et {
                        self.err(format!("assign {var}: variable is {vt}, value is {et}"));
                    }
                }
            }
            Stmt::Store {
                arr, idx, value, ..
            } => {
                if arr.index() >= self.p.globals.len() {
                    self.err(format!("{arr} out of range"));
                    return;
                }
                let elem = self.p.global(*arr).elem;
                if self.type_of(idx) != Some(Type::I64) && self.type_of(idx).is_some() {
                    self.err(format!("store to {arr}: index must be i64"));
                }
                if let Some(vt) = self.type_of(value) {
                    if vt != elem {
                        self.err(format!("store to {arr}: element is {elem}, value is {vt}"));
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                if self.type_of(cond).is_some_and(|t| t != Type::Bool) {
                    self.err("if condition must be bool".into());
                }
                self.check_body(then_body);
                self.check_body(else_body);
            }
            Stmt::For {
                var,
                from,
                to,
                step,
                body,
                ..
            } => {
                if self.var_type(*var).is_some_and(|t| t != Type::I64) {
                    self.err(format!("for variable {var} must be i64"));
                }
                for (what, e) in [("from", from), ("to", to)] {
                    if self.type_of(e).is_some_and(|t| t != Type::I64) {
                        self.err(format!("for {what} bound must be i64"));
                    }
                }
                if *step == 0 {
                    self.err("for step must be non-zero".into());
                }
                self.check_body(body);
            }
            Stmt::While { cond, body, .. } => {
                if self.type_of(cond).is_some_and(|t| t != Type::Bool) {
                    self.err("while condition must be bool".into());
                }
                self.check_body(body);
            }
            Stmt::Expr { expr } => {
                self.type_of(expr);
            }
            Stmt::Return { value, .. } => match (&self.f.ret, value) {
                (Some(rt), Some(e)) => {
                    if self.type_of(e).is_some_and(|t| t != *rt) {
                        self.err(format!("return type mismatch (expected {rt})"));
                    }
                }
                (Some(rt), None) => self.err(format!("missing return value of type {rt}")),
                (None, Some(_)) => self.err("return with value in void function".into()),
                (None, None) => {}
            },
            Stmt::Spawn {
                func, args, handle, ..
            } => {
                if func.index() >= self.p.functions.len() {
                    self.err(format!("spawn of unknown {func}"));
                    return;
                }
                let callee = self.p.function(*func);
                if callee.params.len() != args.len() {
                    self.err(format!(
                        "spawn {}: expected {} args, got {}",
                        callee.name,
                        callee.params.len(),
                        args.len()
                    ));
                }
                let expected: Vec<Type> = callee.params.iter().map(|p| p.ty).collect();
                for (i, (a, et)) in args.iter().zip(expected).enumerate() {
                    if self.type_of(a).is_some_and(|t| t != et) {
                        self.err(format!("spawn arg {i}: expected {et}"));
                    }
                }
                if self.var_type(*handle).is_some_and(|t| t != Type::I64) {
                    self.err("spawn handle must be i64".into());
                }
            }
            Stmt::Join { handle, .. } => {
                if self.type_of(handle).is_some_and(|t| t != Type::I64) {
                    self.err("join handle must be i64".into());
                }
            }
            Stmt::Barrier { bar, .. } => {
                if *bar >= self.p.n_barriers {
                    self.err(format!("barrier {bar} out of range"));
                }
            }
            Stmt::Lock { mutex, .. } | Stmt::Unlock { mutex, .. } => {
                if *mutex >= self.p.n_mutexes {
                    self.err(format!("mutex {mutex} out of range"));
                }
            }
            Stmt::Output { arr, .. } => {
                if arr.index() >= self.p.globals.len() {
                    self.err(format!("{arr} out of range"));
                }
            }
        }
    }

    /// Infers the type of an expression, reporting mismatches along the way.
    fn type_of(&mut self, e: &Expr) -> Option<Type> {
        match e {
            Expr::Int(_) => Some(Type::I64),
            Expr::Float(_) => Some(Type::F64),
            Expr::Bool(_) => Some(Type::Bool),
            Expr::Var(v) => self.var_type(*v),
            Expr::Load { arr, idx, .. } => {
                if arr.index() >= self.p.globals.len() {
                    self.err(format!("{arr} out of range"));
                    return None;
                }
                if self.type_of(idx).is_some_and(|t| t != Type::I64) {
                    self.err(format!("load from {arr}: index must be i64"));
                }
                Some(self.p.global(*arr).elem)
            }
            Expr::Un { op, a, .. } => {
                let (at, rt) = op.signature();
                if self.type_of(a).is_some_and(|t| t != at) {
                    self.err(format!("{}: operand must be {at}", op.label()));
                }
                Some(rt)
            }
            Expr::Bin { op, a, b, .. } => {
                let at = self.type_of(a);
                let bt = self.type_of(b);
                if let (Some(at), Some(bt)) = (at, bt) {
                    if at != bt {
                        self.err(format!(
                            "{}: operand types differ ({at} vs {bt})",
                            op.label()
                        ));
                    }
                    if let Some(expected) = op.operand_type() {
                        if at != expected {
                            self.err(format!("{}: operands must be {expected}", op.label()));
                        }
                    } else if at != Type::Bool && !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
                    {
                        self.err(format!("{}: unsupported operand type {at}", op.label()));
                    } else if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
                        && at != Type::Bool
                        && at != Type::I64
                    {
                        self.err(format!("{}: operands must be bool or i64", op.label()));
                    }
                    Some(op.result_type(at))
                } else {
                    None
                }
            }
            Expr::Intr { op, args, .. } => {
                if args.len() != op.arity() {
                    self.err(format!("{}: expected {} args", op.label(), op.arity()));
                    return None;
                }
                match op {
                    crate::ops::Intrinsic::Select => {
                        if self.type_of(&args[0]).is_some_and(|t| t != Type::Bool) {
                            self.err("select: condition must be bool".into());
                        }
                        let t1 = self.type_of(&args[1]);
                        let t2 = self.type_of(&args[2]);
                        if let (Some(t1), Some(t2)) = (t1, t2) {
                            if t1 != t2 {
                                self.err("select: branch types differ".into());
                            }
                        }
                        t1
                    }
                    crate::ops::Intrinsic::Abs => {
                        if self.type_of(&args[0]).is_some_and(|t| t != Type::I64) {
                            self.err("abs: operand must be i64".into());
                        }
                        Some(Type::I64)
                    }
                    _ => {
                        if self.type_of(&args[0]).is_some_and(|t| t != Type::F64) {
                            self.err(format!("{}: operand must be f64", op.label()));
                        }
                        Some(Type::F64)
                    }
                }
            }
            Expr::Call { f, args, .. } => {
                if f.index() >= self.p.functions.len() {
                    self.err(format!("call of unknown {f}"));
                    return None;
                }
                let callee = self.p.function(*f);
                if callee.params.len() != args.len() {
                    self.err(format!(
                        "call {}: expected {} args, got {}",
                        callee.name,
                        callee.params.len(),
                        args.len()
                    ));
                }
                let expected: Vec<Type> = callee.params.iter().map(|p| p.ty).collect();
                for (i, (a, et)) in args.iter().zip(expected).enumerate() {
                    if self.type_of(a).is_some_and(|t| t != et) {
                        self.err(format!("call {} arg {i}: expected {et}", callee.name));
                    }
                }
                callee.ret
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::{ArrId, FnId, VarId};
    use crate::loc::Loc;

    #[test]
    fn valid_program_passes() {
        let mut pb = ProgramBuilder::new("ok");
        let data = pb.global("data", Type::F64, 4);
        let mut f = pb.function("main", vec![], None);
        let acc = f.local("acc", Type::F64);
        let ld = f.load(data, Expr::Int(0));
        let sum = f.bin(BinOp::FAdd, Expr::Var(acc), ld);
        f.assign(acc, sum);
        let main = f.finish();
        let p = pb.finish(main);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut pb = ProgramBuilder::new("bad");
        let mut f = pb.function("main", vec![], None);
        let x = f.local("x", Type::I64);
        f.assign(x, Expr::Float(1.0)); // i64 := f64
        let main = f.finish();
        let p = pb.finish(main);
        let errs = validate(&p).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("variable is i64"));
    }

    #[test]
    fn mixed_operand_types_rejected() {
        let mut pb = ProgramBuilder::new("bad2");
        let mut f = pb.function("main", vec![], None);
        let x = f.local("x", Type::F64);
        let e = f.bin(BinOp::FAdd, Expr::Float(1.0), Expr::Int(2));
        f.assign(x, e);
        let main = f.finish();
        let p = pb.finish(main);
        assert!(validate(&p).is_err());
    }

    #[test]
    fn unknown_references_rejected() {
        let mut pb = ProgramBuilder::new("bad3");
        let mut f = pb.function("main", vec![], None);
        f.assign(VarId(7), Expr::Int(0)); // no such slot
        f.push(Stmt::Store {
            arr: ArrId(3),
            idx: Expr::Int(0),
            value: Expr::Int(0),
            loc: Loc::NONE,
        });
        f.push(Stmt::Barrier {
            bar: 0,
            loc: Loc::NONE,
        }); // no barriers declared
        let main = f.finish();
        let p = pb.finish(main);
        let errs = validate(&p).unwrap_err();
        assert_eq!(errs.len(), 3);
    }

    #[test]
    fn call_signature_checked() {
        let mut pb = ProgramBuilder::new("bad4");
        let callee = {
            let f = pb.function("callee", vec![("a", Type::F64)], Some(Type::F64));
            f.finish()
        };
        let mut f = pb.function("main", vec![], None);
        let x = f.local("x", Type::F64);
        let c = f.call(callee, vec![Expr::Int(1)]); // wrong arg type
        f.assign(x, c);
        let main = f.finish();
        let p = pb.finish(main);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected f64")));
    }

    #[test]
    fn return_rules() {
        let mut pb = ProgramBuilder::new("bad5");
        let mut f = pb.function("f", vec![], Some(Type::I64));
        f.ret(None); // missing value
        let fid = f.finish();
        let p = pb.finish(fid);
        let errs = validate(&p).unwrap_err();
        assert!(errs[0].message.contains("missing return value"));
    }

    #[test]
    fn spawn_signature_checked() {
        let mut pb = ProgramBuilder::new("bad6");
        let worker = FnId(1);
        let mut main = pb.function("main", vec![], None);
        let h = main.local("h", Type::I64);
        main.push(Stmt::Spawn {
            func: worker,
            args: vec![],
            handle: h,
            loc: Loc::NONE,
        });
        let main_id = main.finish();
        let w = pb.function("worker", vec![("tid", Type::I64)], None);
        w.finish();
        let p = pb.finish(main_id);
        let errs = validate(&p).unwrap_err();
        assert!(errs[0].message.contains("expected 1 args"));
    }

    #[test]
    fn bad_entry_rejected() {
        let pb = ProgramBuilder::new("noentry");
        let p = pb.finish(FnId(5));
        assert!(validate(&p).is_err());
    }
}
