//! `repro-ir` — a compact, typed intermediate representation standing in for
//! LLVM IR in the PPoPP '21 *Modernizing Parallel Code with Pattern Analysis*
//! reproduction.
//!
//! The paper instruments LLVM IR so that every *execution* of an IR operation
//! becomes a node of a dynamic dataflow graph (DDG). This crate provides the
//! static side of that story:
//!
//! * a small structured IR ([`Program`], [`Function`], [`Stmt`], [`Expr`])
//!   with the operations that matter for pattern analysis — arithmetic,
//!   comparisons, array loads/stores, calls, loops, and Pthreads-style
//!   threading primitives (`spawn`/`join`/`barrier`/`lock`);
//! * stable static identities: every value-producing operation carries an
//!   [`OpId`] and a source [`Loc`], and every loop carries a [`LoopId`] —
//!   these become the labels of DDG nodes and the keys of loop-scope
//!   decomposition;
//! * static analyses used by the pattern finder's *simplification* phase:
//!   generalized iterator recognition ([`iter_rec`]) in the spirit of
//!   Manilov et al. (CC '18), which the paper uses to identify and strip
//!   data-structure traversals from DDGs.
//!
//! The interpreter that actually executes this IR and records the DDG lives
//! in the `trace` crate; the `minc` crate compiles a mini-C surface language
//! down to this IR so the Starbench benchmarks can be expressed in a form
//! close to their legacy C sources.

pub mod builder;
pub mod display;
pub mod expr;
pub mod fingerprint;
pub mod func;
pub mod ids;
pub mod iter_rec;
pub mod loc;
pub mod ops;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod visit;

pub use builder::{FnBuilder, ProgramBuilder};
pub use expr::Expr;
pub use fingerprint::{
    fingerprint_function, fingerprint_program, fingerprint_serialized, fingerprint_str,
    ContentHash, ContentHasher,
};
pub use func::{Function, GlobalArray, Param, Program};
pub use ids::{ArrId, FnId, LoopId, OpId, VarId};
pub use iter_rec::IteratorInfo;
pub use loc::Loc;
pub use ops::{BinOp, Intrinsic, UnOp};
pub use stmt::Stmt;
pub use types::{Type, Value};
pub use validate::{validate, ValidationError};
