//! Content hashing for the incremental query layer (DESIGN.md §18).
//!
//! Every stage of the analysis pipeline is keyed by a [`ContentHash`]
//! of its canonical input: a program's serialized IR, a run
//! configuration, a traced DDG. Two inputs hash equal exactly when
//! their canonical byte forms are equal, so cache keys survive
//! re-parsing, re-ordering of `HashMap` iteration, and daemon
//! restarts.
//!
//! The hash is a 128-bit two-lane FNV-1a: two independent 64-bit FNV
//! streams over the same bytes, seeded differently. FNV is not
//! cryptographic, but the query layer does not need collision
//! *resistance* against an adversary — it needs a stable, fast,
//! dependency-free fingerprint with a collision probability that is
//! negligible at cache scale (2^-128 birthday bound dwarfs the store
//! capacities involved). Nothing in this module depends on pointer
//! values, allocation order, or the host.

use crate::func::{Function, Program};
use serde::Serialize;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-lane seed: the FNV offset basis XORed with an arbitrary
/// odd constant so the lanes decorrelate from the first byte on.
const FNV_OFFSET_B: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// A 128-bit content fingerprint. Equality means "same canonical
/// bytes" for all practical purposes; `Display` renders 32 lowercase
/// hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Parses the 32-hex-digit form produced by `Display` (used by the
    /// persistent cache loader and the wire protocol).
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }

    /// Combines two hashes order-dependently (for composite keys like
    /// `(program, input)` without re-serializing both parts).
    pub fn combine(self, other: ContentHash) -> ContentHash {
        let mut h = ContentHasher::new();
        h.write_u64((self.0 >> 64) as u64);
        h.write_u64(self.0 as u64);
        h.write_u64((other.0 >> 64) as u64);
        h.write_u64(other.0 as u64);
        h.finish()
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({:032x})", self.0)
    }
}

/// Streaming two-lane FNV-1a hasher producing a [`ContentHash`].
#[derive(Clone)]
pub struct ContentHasher {
    a: u64,
    b: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    pub fn new() -> Self {
        ContentHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a string with a length prefix, so `("ab", "c")` and
    /// `("a", "bc")` fingerprint differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Hashes the exact bit pattern (distinguishes `0.0` from `-0.0`
    /// and every NaN payload — canonical-bytes semantics, not float
    /// equality).
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub fn finish(&self) -> ContentHash {
        ContentHash(((self.a as u128) << 64) | self.b as u128)
    }
}

/// Fingerprints any serializable value via its canonical JSON byte
/// form. The serde shim's derive emits fields in declaration order
/// with no whitespace, so this is deterministic across processes.
pub fn fingerprint_serialized<T: Serialize>(value: &T) -> ContentHash {
    let mut buf = String::new();
    value.serialize_json(&mut buf);
    fingerprint_str(&buf)
}

/// Fingerprints a raw string (length-prefixed).
pub fn fingerprint_str(s: &str) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_str(s);
    h.finish()
}

/// The canonical fingerprint of a whole program: its serialized IR.
/// Captures semantic identity — editing a constant changes it (the
/// trace must re-run), while re-compiling identical source does not.
pub fn fingerprint_program(p: &Program) -> ContentHash {
    fingerprint_serialized(p)
}

/// The canonical fingerprint of one lowered function.
pub fn fingerprint_function(f: &Function) -> ContentHash {
    fingerprint_serialized(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let h = fingerprint_str("hello");
        let parsed = ContentHash::from_hex(&h.to_string()).unwrap();
        assert_eq!(h, parsed);
        assert_eq!(h.to_string().len(), 32);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fingerprint_str("a"), fingerprint_str("b"));
        assert_ne!(fingerprint_str(""), fingerprint_str("\0"));
        let mut h1 = ContentHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = ContentHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn combine_is_order_dependent() {
        let a = fingerprint_str("a");
        let b = fingerprint_str("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_eq!(a.combine(b), a.combine(b));
    }

    #[test]
    fn float_bits_matter() {
        let mut h1 = ContentHasher::new();
        h1.write_f64(0.0);
        let mut h2 = ContentHasher::new();
        h2.write_f64(-0.0);
        assert_ne!(h1.finish(), h2.finish());
    }
}
