//! Expressions.
//!
//! Only *computation* gets an [`OpId`] (and hence DDG nodes): arithmetic,
//! comparisons, conversions, and intrinsic calls. Reads of variables and
//! array loads are pure data transfer — the paper's DDG "by construction
//! does not contain any notion of data location, and hence abstracts away
//! data transferring" (§3) — so they carry no `OpId` and the tracer simply
//! forwards the defining node through them. Array *subscript* expressions,
//! in contrast, are ordinary integer computation whose result is consumed at
//! an *address* use; the tracer records that consumption so the finder's
//! simplification phase can strip memory address calculations (§5).

use crate::ids::{ArrId, FnId, OpId, VarId};
use crate::loc::Loc;
use crate::ops::{BinOp, Intrinsic, UnOp};
use serde::{Deserialize, Serialize};

/// An IR expression tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal. Constants define no node (paper Fig. 2c draws the
    /// additive identity as a sourceless arc).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Read of a local variable or parameter: pure data transfer.
    Var(VarId),
    /// Array load `arr[idx]`: data transfer for the element value, plus an
    /// *address use* of the `idx` computation.
    Load {
        arr: ArrId,
        idx: Box<Expr>,
        loc: Loc,
    },
    /// Unary operation — one DDG node per execution.
    Un {
        op: UnOp,
        a: Box<Expr>,
        id: OpId,
        loc: Loc,
    },
    /// Binary operation — one DDG node per execution.
    Bin {
        op: BinOp,
        a: Box<Expr>,
        b: Box<Expr>,
        id: OpId,
        loc: Loc,
    },
    /// Intrinsic call — one DDG node per execution, labeled `call.<name>`.
    Intr {
        op: Intrinsic,
        args: Vec<Expr>,
        id: OpId,
        loc: Loc,
    },
    /// Call of a user function. The callee's operations are traced
    /// individually (whole-program tracing is what lets the paper find
    /// patterns spanning translation units — challenge 4 of §2), so the
    /// call itself is not a node; the return value's defining node flows
    /// through to the caller.
    Call { f: FnId, args: Vec<Expr>, loc: Loc },
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr, id: OpId, loc: Loc) -> Expr {
        Expr::Bin {
            op,
            a: Box::new(a),
            b: Box::new(b),
            id,
            loc,
        }
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, a: Expr, id: OpId, loc: Loc) -> Expr {
        Expr::Un {
            op,
            a: Box::new(a),
            id,
            loc,
        }
    }

    /// Convenience constructor for an array load.
    pub fn load(arr: ArrId, idx: Expr, loc: Loc) -> Expr {
        Expr::Load {
            arr,
            idx: Box::new(idx),
            loc,
        }
    }

    /// The source location of the outermost construct, if any.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Var(_) => Loc::NONE,
            Expr::Load { loc, .. }
            | Expr::Un { loc, .. }
            | Expr::Bin { loc, .. }
            | Expr::Intr { loc, .. }
            | Expr::Call { loc, .. } => *loc,
        }
    }

    /// Iterates over the direct subexpressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Var(_) => vec![],
            Expr::Load { idx, .. } => vec![idx],
            Expr::Un { a, .. } => vec![a],
            Expr::Bin { a, b, .. } => vec![a, b],
            Expr::Intr { args, .. } => args.iter().collect(),
            Expr::Call { args, .. } => args.iter().collect(),
        }
    }

    /// Number of value-producing operations (`OpId`s) in this subtree.
    pub fn op_count(&self) -> usize {
        let own = matches!(self, Expr::Un { .. } | Expr::Bin { .. } | Expr::Intr { .. }) as usize;
        own + self.children().iter().map(|c| c.op_count()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // (v0 + arr0[v1]) * 2.0
        Expr::bin(
            BinOp::FMul,
            Expr::bin(
                BinOp::FAdd,
                Expr::Var(VarId(0)),
                Expr::load(ArrId(0), Expr::Var(VarId(1)), Loc::new(2, 10)),
                OpId(0),
                Loc::new(2, 5),
            ),
            Expr::Float(2.0),
            OpId(1),
            Loc::new(2, 3),
        )
    }

    #[test]
    fn op_count_skips_transfers_and_constants() {
        // Only the fadd and fmul are operations; Var/Load/Float are not.
        assert_eq!(sample().op_count(), 2);
    }

    #[test]
    fn children_cover_all_subtrees() {
        let e = sample();
        assert_eq!(e.children().len(), 2);
        assert_eq!(e.loc(), Loc::new(2, 3));
        assert_eq!(Expr::Var(VarId(0)).loc(), Loc::NONE);
    }

    #[test]
    fn intrinsic_children() {
        let e = Expr::Intr {
            op: Intrinsic::Select,
            args: vec![Expr::Bool(true), Expr::Int(1), Expr::Int(2)],
            id: OpId(9),
            loc: Loc::NONE,
        };
        assert_eq!(e.children().len(), 3);
        assert_eq!(e.op_count(), 1);
    }
}
