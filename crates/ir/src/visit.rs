//! Structural traversal helpers over statements and expressions.

use crate::expr::Expr;
use crate::func::{Function, Program};
use crate::stmt::Stmt;

/// Calls `f` on every statement in `stmts`, pre-order, recursing into
/// nested blocks.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        for block in s.blocks() {
            walk_stmts(block, f);
        }
    }
}

/// Calls `f` on every expression in `e`'s subtree, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    for c in e.children() {
        walk_expr(c, f);
    }
}

/// Calls `f` on every expression reachable from `stmts` (including within
/// nested blocks), pre-order.
pub fn walk_all_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    walk_stmts(stmts, &mut |s| {
        for e in s.exprs() {
            walk_expr(e, f);
        }
    });
}

/// Calls `f` on every statement of every function of the program.
pub fn walk_program<'a>(p: &'a Program, f: &mut impl FnMut(&'a Function, &'a Stmt)) {
    for func in &p.functions {
        walk_stmts(&func.body, &mut |s| f(func, s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FnBuilder, ProgramBuilder};
    use crate::ops::BinOp;
    use crate::types::Type;

    #[test]
    fn walks_nested_blocks_and_exprs() {
        let mut pb = ProgramBuilder::new("walk");
        let out = pb.global("out", Type::I64, 8);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(8), |f, i| {
            let v = f.bin(BinOp::Add, Expr::Var(i), Expr::Int(1));
            vec![FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        let main = f.finish();
        let p = pb.finish(main);

        let mut stmt_count = 0;
        walk_stmts(&p.function(main).body, &mut |_| stmt_count += 1);
        assert_eq!(stmt_count, 2); // For + Store

        let mut op_count = 0;
        walk_all_exprs(&p.function(main).body, &mut |e| {
            if matches!(e, Expr::Bin { .. }) {
                op_count += 1;
            }
        });
        assert_eq!(op_count, 1);

        let mut total = 0;
        walk_program(&p, &mut |_, _| total += 1);
        assert_eq!(total, 2);
    }
}
