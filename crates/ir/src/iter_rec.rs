//! Generalized iterator recognition.
//!
//! The paper strips *data-structure traversals* from DDGs using the
//! generalized iterator-recognition analysis of Manilov, Vasiladiotis &
//! Franke (CC '18): the operations that merely walk a data structure (update
//! an induction variable, test the loop bound) do not characterize a pattern
//! and would otherwise chain loop iterations together, hiding maps.
//!
//! In this IR, counted [`crate::Stmt::For`] loops already keep their
//! traversal bookkeeping implicit, so the analysis concerns general
//! [`crate::Stmt::While`] loops: it recognizes the classic iterator shape —
//! a local updated as `v = v ⊕ step` inside the loop and consumed by the
//! loop condition or by address computation — and returns the [`OpId`]s of
//! those update and test operations so the simplification phase can drop
//! their DDG nodes.

use crate::expr::Expr;
use crate::func::Program;
use crate::ids::{LoopId, OpId, VarId};
use crate::stmt::Stmt;
use crate::visit::{walk_expr, walk_stmts};
use std::collections::HashSet;

/// Result of iterator recognition over a whole program.
#[derive(Clone, Debug, Default)]
pub struct IteratorInfo {
    /// Operations that implement loop traversal (induction updates and
    /// bound tests). Their dynamic executions are removed by DDG
    /// simplification.
    pub iterator_ops: HashSet<OpId>,
    /// The loops in which each iterator variable was recognized, for
    /// diagnostics.
    pub loops_with_iterators: HashSet<LoopId>,
}

/// Runs iterator recognition over every `while` loop of the program.
pub fn analyze(p: &Program) -> IteratorInfo {
    let mut info = IteratorInfo::default();
    for f in &p.functions {
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::While { id, cond, body, .. } = s {
                analyze_while(*id, cond, body, &mut info);
            }
        });
    }
    info
}

/// Recognizes iterator variables within one `while` loop.
fn analyze_while(id: LoopId, cond: &Expr, body: &[Stmt], info: &mut IteratorInfo) {
    // Variables read by the loop condition.
    let mut cond_vars: HashSet<VarId> = HashSet::new();
    walk_expr(cond, &mut |e| {
        if let Expr::Var(v) = e {
            cond_vars.insert(*v);
        }
    });

    // Find self-updates `v = v ⊕ e` (or `v = e ⊕ v`) at the top level or
    // inside nested blocks of the loop body.
    let mut found_any = false;
    walk_stmts(body, &mut |s| {
        if let Stmt::Assign { var, value, .. } = s {
            if let Some(op_id) = self_update_op(*var, value) {
                if cond_vars.contains(var) {
                    info.iterator_ops.insert(op_id);
                    found_any = true;
                }
            }
        }
    });

    // If the loop has a recognized iterator, its bound test is traversal
    // bookkeeping too: mark every operation in the condition.
    if found_any {
        info.loops_with_iterators.insert(id);
        walk_expr(cond, &mut |e| {
            if let Expr::Bin { id, .. } | Expr::Un { id, .. } | Expr::Intr { id, .. } = e {
                info.iterator_ops.insert(*id);
            }
        });
    }
}

/// If `value` is `var ⊕ e` or `e ⊕ var` with an additive/multiplicative
/// operator — the generalized iterator update shape — returns the update's
/// op id.
fn self_update_op(var: VarId, value: &Expr) -> Option<OpId> {
    if let Expr::Bin { op, a, b, id, .. } = value {
        use crate::ops::BinOp::*;
        if matches!(op, Add | Sub | Mul | Shl | Shr) {
            let reads_var = |e: &Expr| matches!(e, Expr::Var(v) if *v == var);
            if reads_var(a) || reads_var(b) {
                return Some(*id);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::loc::Loc;
    use crate::ops::BinOp;
    use crate::types::Type;

    /// Builds `while (i < n) { acc = acc + data[i]; i = i + 1; }`.
    fn while_sum_program() -> (Program, OpId, OpId, OpId) {
        let mut pb = ProgramBuilder::new("wsum");
        let data = pb.global("data", Type::F64, 8);
        let mut f = pb.function("main", vec![("n", Type::I64)], None);
        let n = f.param(0);
        let i = f.local("i", Type::I64);
        let acc = f.local("acc", Type::F64);
        f.assign(i, Expr::Int(0));
        f.assign(acc, Expr::Float(0.0));
        let cond = f.bin(BinOp::Lt, Expr::Var(i), Expr::Var(n));
        let cmp_id = match &cond {
            Expr::Bin { id, .. } => *id,
            _ => unreachable!(),
        };
        let ld = f.load(data, Expr::Var(i));
        let add = f.bin(BinOp::FAdd, Expr::Var(acc), ld);
        let add_id = match &add {
            Expr::Bin { id, .. } => *id,
            _ => unreachable!(),
        };
        let inc = f.bin(BinOp::Add, Expr::Var(i), Expr::Int(1));
        let inc_id = match &inc {
            Expr::Bin { id, .. } => *id,
            _ => unreachable!(),
        };
        let loop_id = { LoopId(0) };
        let body = vec![
            Stmt::Assign {
                var: acc,
                value: add,
                loc: Loc::NONE,
            },
            Stmt::Assign {
                var: i,
                value: inc,
                loc: Loc::NONE,
            },
        ];
        f.push(Stmt::While {
            id: loop_id,
            cond,
            body,
            loc: Loc::NONE,
        });
        let main = f.finish();
        (pb.finish(main), cmp_id, add_id, inc_id)
    }

    #[test]
    fn recognizes_induction_update_and_test() {
        let (p, cmp_id, add_id, inc_id) = while_sum_program();
        let info = analyze(&p);
        assert!(
            info.iterator_ops.contains(&inc_id),
            "i = i + 1 is an iterator op"
        );
        assert!(
            info.iterator_ops.contains(&cmp_id),
            "loop test is an iterator op"
        );
        assert!(
            !info.iterator_ops.contains(&add_id),
            "the reduction add is NOT traversal"
        );
        assert_eq!(info.loops_with_iterators.len(), 1);
    }

    #[test]
    fn non_induction_updates_are_kept() {
        // while (flag) { x = x * x; }  — x not in the condition: not an iterator.
        let mut pb = ProgramBuilder::new("nind");
        let mut f = pb.function("main", vec![("flag", Type::Bool)], None);
        let flag = f.param(0);
        let x = f.local("x", Type::I64);
        let sq = f.bin(BinOp::Mul, Expr::Var(x), Expr::Var(x));
        f.push(Stmt::While {
            id: LoopId(0),
            cond: Expr::Var(flag),
            body: vec![Stmt::Assign {
                var: x,
                value: sq,
                loc: Loc::NONE,
            }],
            loc: Loc::NONE,
        });
        let main = f.finish();
        let p = pb.finish(main);
        let info = analyze(&p);
        assert!(info.iterator_ops.is_empty());
        assert!(info.loops_with_iterators.is_empty());
    }

    #[test]
    fn for_loops_need_no_recognition() {
        let mut pb = ProgramBuilder::new("forloop");
        let out = pb.global("out", Type::I64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let v = f.bin(BinOp::Add, Expr::Var(i), Expr::Int(1));
            vec![crate::builder::FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        let main = f.finish();
        let p = pb.finish(main);
        let info = analyze(&p);
        assert!(info.iterator_ops.is_empty());
    }
}
