//! Source locations.
//!
//! The pattern finder reports every found pattern back at its exact source
//! position (paper §5, Fig. 6), so each IR operation carries the location of
//! the surface-syntax construct it was lowered from.

use serde::{Deserialize, Serialize};

/// A position in a source file: 1-based line and column plus a file index.
///
/// Files are interned by the frontend; index 0 conventionally names the main
/// translation unit. `Loc::NONE` marks synthesized operations with no
/// surface counterpart (e.g. implicit widening inserted by lowering).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Loc {
    /// Index of the source file in the program's file table.
    pub file: u16,
    /// 1-based line; 0 means "no location".
    pub line: u32,
    /// 1-based column; 0 means "no location".
    pub col: u32,
}

impl Loc {
    /// The absent location.
    pub const NONE: Loc = Loc {
        file: 0,
        line: 0,
        col: 0,
    };

    /// Creates a location in file 0.
    pub fn new(line: u32, col: u32) -> Self {
        Loc { file: 0, line, col }
    }

    /// Creates a location in an explicit file.
    pub fn in_file(file: u16, line: u32, col: u32) -> Self {
        Loc { file, line, col }
    }

    /// True when this location refers to actual source text.
    pub fn is_some(self) -> bool {
        self.line != 0
    }
}

impl std::fmt::Debug for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_some() {
            write!(f, "{}:{}:{}", self.file, self.line, self.col)
        } else {
            write!(f, "<none>")
        }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_not_some() {
        assert!(!Loc::NONE.is_some());
        assert!(Loc::new(3, 1).is_some());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Loc::new(12, 5).to_string(), "0:12:5");
        assert_eq!(Loc::NONE.to_string(), "<none>");
        assert_eq!(Loc::in_file(2, 7, 1).to_string(), "2:7:1");
    }

    #[test]
    fn locations_order_by_file_then_line() {
        assert!(Loc::in_file(0, 9, 9) < Loc::in_file(1, 1, 1));
        assert!(Loc::new(3, 1) < Loc::new(3, 2));
    }
}
