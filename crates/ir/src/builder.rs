//! Programmatic IR construction.
//!
//! [`ProgramBuilder`] owns program-wide id allocation ([`OpId`]s and
//! [`LoopId`]s are dense across the whole program, which the tracer and the
//! finder's tables rely on); [`FnBuilder`] builds one function at a time.
//! The `minc` frontend lowers through these builders, and tests and
//! synthetic workloads use them directly.

use crate::expr::Expr;
use crate::func::{Function, GlobalArray, Local, Param, Program};
use crate::ids::{ArrId, FnId, LoopId, OpId, VarId};
use crate::loc::Loc;
use crate::ops::{BinOp, Intrinsic, UnOp};
use crate::stmt::Stmt;
use crate::types::Type;

/// Builds a [`Program`], allocating all program-global ids.
pub struct ProgramBuilder {
    name: String,
    functions: Vec<Function>,
    globals: Vec<GlobalArray>,
    n_mutexes: usize,
    n_barriers: usize,
    next_op: u32,
    next_loop: u32,
    files: Vec<String>,
    sources: Vec<String>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            n_mutexes: 0,
            n_barriers: 0,
            next_op: 0,
            next_loop: 0,
            files: vec!["<builder>".into()],
            sources: vec![String::new()],
        }
    }

    /// Registers a source file; returns its index for [`Loc::in_file`].
    pub fn add_file(&mut self, name: impl Into<String>, source: impl Into<String>) -> u16 {
        // Slot 0 is the synthetic "<builder>" file; replace it on first use.
        if self.files.len() == 1 && self.files[0] == "<builder>" && self.sources[0].is_empty() {
            self.files[0] = name.into();
            self.sources[0] = source.into();
            0
        } else {
            self.files.push(name.into());
            self.sources.push(source.into());
            (self.files.len() - 1) as u16
        }
    }

    /// Declares a global array.
    pub fn global(&mut self, name: impl Into<String>, elem: Type, len: usize) -> ArrId {
        let id = ArrId(self.globals.len() as u32);
        self.globals.push(GlobalArray {
            id,
            name: name.into(),
            elem,
            len,
        });
        id
    }

    /// Declares a mutex object; returns its index.
    pub fn mutex(&mut self) -> usize {
        self.n_mutexes += 1;
        self.n_mutexes - 1
    }

    /// Declares a barrier object; returns its index.
    pub fn barrier(&mut self) -> usize {
        self.n_barriers += 1;
        self.n_barriers - 1
    }

    /// Allocates a fresh operation id.
    pub fn fresh_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Allocates a fresh loop id.
    pub fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    /// The id the next declared function will get (for forward references —
    /// spawning a worker that is defined later).
    pub fn next_fn_id(&self) -> FnId {
        FnId(self.functions.len() as u32)
    }

    /// Opens a function builder. Finish it with [`FnBuilder::finish`].
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Type)>,
        ret: Option<Type>,
    ) -> FnBuilder<'_> {
        let id = self.next_fn_id();
        FnBuilder {
            pb: self,
            id,
            name: name.into(),
            params: params
                .into_iter()
                .map(|(n, t)| Param {
                    name: n.to_string(),
                    ty: t,
                })
                .collect(),
            locals: Vec::new(),
            ret,
            body: Vec::new(),
            loc: Loc::NONE,
        }
    }

    /// Finalizes the program with `entry` as the start function.
    pub fn finish(self, entry: FnId) -> Program {
        Program {
            name: self.name,
            functions: self.functions,
            globals: self.globals,
            n_mutexes: self.n_mutexes,
            n_barriers: self.n_barriers,
            entry,
            op_count: self.next_op,
            loop_count: self.next_loop,
            files: self.files,
            sources: self.sources,
        }
    }
}

/// Builds one [`Function`]. Expression helpers allocate fresh [`OpId`]s from
/// the parent [`ProgramBuilder`].
pub struct FnBuilder<'p> {
    pb: &'p mut ProgramBuilder,
    id: FnId,
    name: String,
    params: Vec<Param>,
    locals: Vec<Local>,
    ret: Option<Type>,
    body: Vec<Stmt>,
    loc: Loc,
}

impl<'p> FnBuilder<'p> {
    /// This function's id (equal to what the program will record).
    pub fn id(&self) -> FnId {
        self.id
    }

    /// The slot of parameter `i`.
    pub fn param(&self, i: usize) -> VarId {
        assert!(i < self.params.len(), "no parameter {i}");
        VarId(i as u32)
    }

    /// Allocates a fresh loop id (for hand-assembled `Stmt::For`/`While`).
    pub fn fresh_loop(&mut self) -> LoopId {
        self.pb.fresh_loop()
    }

    /// Declares a local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let id = VarId((self.params.len() + self.locals.len()) as u32);
        self.locals.push(Local {
            name: name.into(),
            ty,
        });
        id
    }

    // ---- expression helpers (fresh OpIds) ----

    /// `a <op> b` with a fresh op id.
    pub fn bin(&mut self, op: BinOp, a: Expr, b: Expr) -> Expr {
        let id = self.pb.fresh_op();
        Expr::bin(op, a, b, id, Loc::NONE)
    }

    /// `a <op> b` at a source location.
    pub fn bin_at(&mut self, op: BinOp, a: Expr, b: Expr, loc: Loc) -> Expr {
        let id = self.pb.fresh_op();
        Expr::bin(op, a, b, id, loc)
    }

    /// `<op> a` with a fresh op id.
    pub fn un(&mut self, op: UnOp, a: Expr) -> Expr {
        let id = self.pb.fresh_op();
        Expr::un(op, a, id, Loc::NONE)
    }

    /// Intrinsic call with a fresh op id.
    pub fn intr(&mut self, op: Intrinsic, args: Vec<Expr>) -> Expr {
        let id = self.pb.fresh_op();
        Expr::Intr {
            op,
            args,
            id,
            loc: Loc::NONE,
        }
    }

    /// User-function call (no op id — see [`Expr::Call`]).
    pub fn call(&mut self, f: FnId, args: Vec<Expr>) -> Expr {
        Expr::Call {
            f,
            args,
            loc: Loc::NONE,
        }
    }

    /// Array load.
    pub fn load(&mut self, arr: ArrId, idx: Expr) -> Expr {
        Expr::load(arr, idx, Loc::NONE)
    }

    // ---- statement helpers ----

    /// Appends a raw statement.
    pub fn push(&mut self, s: Stmt) {
        self.body.push(s);
    }

    /// `var = value`.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.body.push(Stmt::Assign {
            var,
            value,
            loc: Loc::NONE,
        });
    }

    /// `arr[idx] = value`.
    pub fn store(&mut self, arr: ArrId, idx: Expr, value: Expr) {
        self.body.push(Stmt::Store {
            arr,
            idx,
            value,
            loc: Loc::NONE,
        });
    }

    /// `return value`.
    pub fn ret(&mut self, value: Option<Expr>) {
        self.body.push(Stmt::Return {
            value,
            loc: Loc::NONE,
        });
    }

    /// Builds a counted loop; `body` receives the builder and the loop
    /// variable and returns the loop body.
    pub fn for_loop(
        &mut self,
        var_name: &str,
        from: Expr,
        to: Expr,
        body: impl FnOnce(&mut Self, VarId) -> Vec<Stmt>,
    ) {
        let var = self.local(var_name, Type::I64);
        let id = self.pb.fresh_loop();
        let stmts = body(self, var);
        self.body.push(Stmt::For {
            id,
            var,
            from,
            to,
            step: 1,
            body: stmts,
            loc: Loc::NONE,
        });
    }

    /// Builds an `if` with no else branch.
    pub fn if_then(&mut self, cond: Expr, then_body: Vec<Stmt>) {
        self.body.push(Stmt::If {
            cond,
            then_body,
            else_body: vec![],
            loc: Loc::NONE,
        });
    }

    /// Statement constructors that do not push (for nested blocks).
    pub fn stmt_assign(var: VarId, value: Expr) -> Stmt {
        Stmt::Assign {
            var,
            value,
            loc: Loc::NONE,
        }
    }

    /// `arr[idx] = value` as a value (for nested blocks).
    pub fn stmt_store(arr: ArrId, idx: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            arr,
            idx,
            value,
            loc: Loc::NONE,
        }
    }

    /// Finishes the function, registering it with the program builder.
    pub fn finish(self) -> FnId {
        let f = Function {
            id: self.id,
            name: self.name,
            params: self.params,
            locals: self.locals,
            ret: self.ret,
            body: self.body,
            loc: self.loc,
        };
        let id = f.id;
        self.pb.functions.push(f);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_sum_program() {
        let mut pb = ProgramBuilder::new("sum");
        let data = pb.global("data", Type::F64, 8);
        let mut f = pb.function("main", vec![("n", Type::I64)], None);
        let n = f.param(0);
        let acc = f.local("acc", Type::F64);
        f.assign(acc, Expr::Float(0.0));
        let idx_expr = Expr::Var(n);
        let load = f.load(data, idx_expr);
        let add = f.bin(BinOp::FAdd, Expr::Var(acc), load);
        f.assign(acc, add);
        let main = f.finish();
        let p = pb.finish(main);

        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.op_count, 1); // one fadd
        assert_eq!(p.function(main).slot_count(), 2); // n, acc
        assert_eq!(p.global(data).name, "data");
    }

    #[test]
    fn for_loop_allocates_loop_id_and_var() {
        let mut pb = ProgramBuilder::new("loop");
        let out = pb.global("out", Type::I64, 4);
        let mut f = pb.function("main", vec![], None);
        f.for_loop("i", Expr::Int(0), Expr::Int(4), |f, i| {
            let v = f.bin(BinOp::Mul, Expr::Var(i), Expr::Int(2));
            vec![FnBuilder::stmt_store(out, Expr::Var(i), v)]
        });
        let main = f.finish();
        let p = pb.finish(main);
        assert_eq!(p.loop_count, 1);
        assert_eq!(p.op_count, 1);
        match &p.function(main).body[0] {
            Stmt::For { id, step, .. } => {
                assert_eq!(*id, LoopId(0));
                assert_eq!(*step, 1);
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_for_spawn() {
        let mut pb = ProgramBuilder::new("threads");
        let worker_id = {
            let mut main = pb.function("main", vec![], None);
            // main is fn0, the worker will be fn1.
            let h = main.local("h", Type::I64);
            let worker_id = FnId(1);
            main.push(Stmt::Spawn {
                func: worker_id,
                args: vec![Expr::Int(0)],
                handle: h,
                loc: Loc::NONE,
            });
            main.push(Stmt::Join {
                handle: Expr::Var(h),
                loc: Loc::NONE,
            });
            main.finish();
            worker_id
        };
        let w = pb.function("worker", vec![("tid", Type::I64)], None);
        assert_eq!(w.id(), worker_id);
        w.finish();
        let p = pb.finish(FnId(0));
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn sync_object_declaration() {
        let mut pb = ProgramBuilder::new("sync");
        assert_eq!(pb.mutex(), 0);
        assert_eq!(pb.mutex(), 1);
        assert_eq!(pb.barrier(), 0);
        let f = pb.function("main", vec![], None);
        let main = f.finish();
        let p = pb.finish(main);
        assert_eq!(p.n_mutexes, 2);
        assert_eq!(p.n_barriers, 1);
    }

    #[test]
    fn add_file_replaces_placeholder_then_appends() {
        let mut pb = ProgramBuilder::new("files");
        let f0 = pb.add_file("a.mc", "src a");
        let f1 = pb.add_file("b.mc", "src b");
        assert_eq!((f0, f1), (0, 1));
        let f = pb.function("main", vec![], None);
        let main = f.finish();
        let p = pb.finish(main);
        assert_eq!(p.files, vec!["a.mc".to_string(), "b.mc".to_string()]);
    }
}
