//! Stable identifiers for static IR entities.
//!
//! The tracer keys DDG nodes by the [`OpId`] of the operation they execute,
//! loop-scope decomposition keys on [`LoopId`], and the interpreter resolves
//! variables, arrays, and functions through the remaining id types. All ids
//! are dense `u32` indices assigned by [`crate::builder::ProgramBuilder`] (or
//! the `minc` lowering), so they can index straight into side tables.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identity of a static value-producing IR operation.
    ///
    /// Every execution of the operation becomes one DDG node labeled with
    /// this id (plus thread and loop-scope context), mirroring how the
    /// paper's instrumentation pass tags each LLVM IR instruction.
    OpId,
    "op"
);

define_id!(
    /// Identity of a static loop (`for` or `while`).
    ///
    /// The dynamic scope of each loop — the set of DDG nodes executed within
    /// it, per iteration — drives the finder's *decomposition* and
    /// *compaction* phases.
    LoopId,
    "loop"
);

define_id!(
    /// A local variable or parameter slot within a function frame.
    VarId,
    "v"
);

define_id!(
    /// A global array (the only heap-like storage in the IR).
    ArrId,
    "arr"
);

define_id!(
    /// A function within a [`crate::Program`].
    FnId,
    "fn"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", OpId(3)), "op3");
        assert_eq!(format!("{:?}", LoopId(7)), "loop7");
        assert_eq!(format!("{}", VarId(0)), "v0");
        assert_eq!(format!("{}", ArrId(2)), "arr2");
        assert_eq!(format!("{}", FnId(1)), "fn1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OpId(1) < OpId(2));
        assert_eq!(OpId(5).index(), 5);
    }
}
