//! Operation kinds and their DDG labels.
//!
//! DDG nodes are labeled with the operation they execute; the pattern
//! definitions compare these labels for the (relaxed) isomorphism
//! constraints (paper constraints 1c and 4c), and the reduction model only
//! admits components whose single operation is *known to be associative*
//! (the paper's under-approximation of constraint 3b). The label strings
//! deliberately mimic LLVM mnemonics (`fadd`, `fmul`, `icmp`, …) as seen in
//! the paper's Fig. 6 report (`tiled_map_reduction fadd,fmul`).

use crate::types::Type;
use serde::{Deserialize, Serialize};

/// Binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer add — associative.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply — associative.
    Mul,
    /// Integer division (truncating, like C).
    Div,
    /// Integer remainder.
    Rem,
    /// Float add — treated as associative for reduction purposes, exactly as
    /// the paper (and every parallelizing compiler flag like `-ffast-math`)
    /// does when re-associating parallel reductions.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply — treated as associative (see [`BinOp::FAdd`]).
    FMul,
    /// Float division.
    FDiv,
    /// Bitwise and — associative.
    And,
    /// Bitwise or — associative.
    Or,
    /// Bitwise xor — associative.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Integer comparisons.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Float comparisons.
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
    /// Integer minimum / maximum — associative. Lowered from the
    /// `min`/`max` intrinsics of the surface language; kept as first-class
    /// ops so reductions over them are recognizable (the paper lists
    /// min/max-via-branches as a current limitation, which if-conversion
    /// into these ops mitigates).
    Min,
    Max,
    /// Float minimum / maximum — associative.
    FMin,
    FMax,
}

impl BinOp {
    /// The DDG node label, styled after LLVM mnemonics.
    pub fn label(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "sdiv",
            BinOp::Rem => "srem",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "lshr",
            BinOp::Eq => "icmp.eq",
            BinOp::Ne => "icmp.ne",
            BinOp::Lt => "icmp.slt",
            BinOp::Le => "icmp.sle",
            BinOp::Gt => "icmp.sgt",
            BinOp::Ge => "icmp.sge",
            BinOp::FEq => "fcmp.oeq",
            BinOp::FNe => "fcmp.one",
            BinOp::FLt => "fcmp.olt",
            BinOp::FLe => "fcmp.ole",
            BinOp::FGt => "fcmp.ogt",
            BinOp::FGe => "fcmp.oge",
            BinOp::Min => "smin",
            BinOp::Max => "smax",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }

    /// Whether this operation is known to be associative — the set of
    /// operators the reduction model admits as single-node components
    /// (paper §5, "Pattern Matching").
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Min
                | BinOp::Max
                | BinOp::FMin
                | BinOp::FMax
        )
    }

    /// True for (integer or float) comparison operators, whose results feed
    /// control flow rather than data flow most of the time.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::FEq
                | BinOp::FNe
                | BinOp::FLt
                | BinOp::FLe
                | BinOp::FGt
                | BinOp::FGe
        )
    }

    /// Result type given the (already checked) operand type.
    pub fn result_type(self, operand: Type) -> Type {
        if self.is_comparison() {
            Type::Bool
        } else {
            operand
        }
    }

    /// The operand type this operator expects, or `None` when polymorphic
    /// (boolean `And`/`Or`/`Xor` also accept `Bool`).
    pub fn operand_type(self) -> Option<Type> {
        use BinOp::*;
        match self {
            Add | Sub | Mul | Div | Rem | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge | Min | Max => {
                Some(Type::I64)
            }
            FAdd | FSub | FMul | FDiv | FEq | FNe | FLt | FLe | FGt | FGe | FMin | FMax => {
                Some(Type::F64)
            }
            And | Or | Xor => None,
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Float negation.
    FNeg,
    /// Logical not.
    Not,
    /// i64 → f64 conversion (LLVM `sitofp`).
    IntToFloat,
    /// f64 → i64 truncation (LLVM `fptosi`).
    FloatToInt,
}

impl UnOp {
    /// The DDG node label.
    pub fn label(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::FNeg => "fneg",
            UnOp::Not => "not",
            UnOp::IntToFloat => "sitofp",
            UnOp::FloatToInt => "fptosi",
        }
    }

    /// (operand, result) types.
    pub fn signature(self) -> (Type, Type) {
        match self {
            UnOp::Neg => (Type::I64, Type::I64),
            UnOp::FNeg => (Type::F64, Type::F64),
            UnOp::Not => (Type::Bool, Type::Bool),
            UnOp::IntToFloat => (Type::I64, Type::F64),
            UnOp::FloatToInt => (Type::F64, Type::I64),
        }
    }
}

/// Opaque math intrinsics, traced as single `call`-style DDG nodes — the
/// same granularity at which the paper's Fig. 2c draws `dist()` nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Intrinsic {
    Sqrt,
    Abs,
    FAbs,
    Floor,
    Sin,
    Cos,
    Exp,
    Log,
    /// Select (`cond ? a : b`), i.e. if-converted conditional data transfer.
    Select,
}

impl Intrinsic {
    /// The DDG node label.
    pub fn label(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "call.sqrt",
            Intrinsic::Abs => "call.abs",
            Intrinsic::FAbs => "call.fabs",
            Intrinsic::Floor => "call.floor",
            Intrinsic::Sin => "call.sin",
            Intrinsic::Cos => "call.cos",
            Intrinsic::Exp => "call.exp",
            Intrinsic::Log => "call.log",
            Intrinsic::Select => "select",
        }
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Select => 3,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associative_set_matches_paper() {
        // The operators the paper's reductions actually use.
        assert!(BinOp::FAdd.is_associative());
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::FMul.is_associative());
        assert!(BinOp::Min.is_associative());
        // Non-associative ops must stay out of reduction components.
        assert!(!BinOp::Sub.is_associative());
        assert!(!BinOp::FDiv.is_associative());
        assert!(!BinOp::Shl.is_associative());
        assert!(!BinOp::FLt.is_associative());
    }

    #[test]
    fn comparisons_produce_bool() {
        assert_eq!(BinOp::FLt.result_type(Type::F64), Type::Bool);
        assert_eq!(BinOp::Add.result_type(Type::I64), Type::I64);
        assert!(BinOp::FGe.is_comparison());
        assert!(!BinOp::FAdd.is_comparison());
    }

    #[test]
    fn labels_are_llvm_style() {
        assert_eq!(BinOp::FAdd.label(), "fadd");
        assert_eq!(BinOp::FMul.label(), "fmul");
        assert_eq!(BinOp::Lt.label(), "icmp.slt");
        assert_eq!(UnOp::IntToFloat.label(), "sitofp");
        assert_eq!(Intrinsic::Sqrt.label(), "call.sqrt");
    }

    #[test]
    fn unop_signatures() {
        assert_eq!(UnOp::Neg.signature(), (Type::I64, Type::I64));
        assert_eq!(UnOp::IntToFloat.signature(), (Type::I64, Type::F64));
        assert_eq!(UnOp::FloatToInt.signature(), (Type::F64, Type::I64));
    }

    #[test]
    fn operand_types() {
        assert_eq!(BinOp::Add.operand_type(), Some(Type::I64));
        assert_eq!(BinOp::FMin.operand_type(), Some(Type::F64));
        assert_eq!(BinOp::And.operand_type(), None);
    }

    #[test]
    fn intrinsic_arity() {
        assert_eq!(Intrinsic::Select.arity(), 3);
        assert_eq!(Intrinsic::Sqrt.arity(), 1);
    }
}
