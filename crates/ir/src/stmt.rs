//! Statements.
//!
//! The statement level carries the two pieces of structure the pattern
//! finder depends on: **loops** (whose dynamic scopes drive decomposition
//! and compaction, paper §5) and **threading primitives** mirroring the
//! Pthreads calls of the legacy benchmarks (`pthread_create`, `join`,
//! `barrier_wait`, `mutex_lock`). Assignments and stores are data transfer
//! and create no DDG nodes of their own.

use crate::expr::Expr;
use crate::ids::{ArrId, FnId, LoopId, VarId};
use crate::loc::Loc;
use serde::{Deserialize, Serialize};

/// An IR statement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = value` — assignment to a local; pure data transfer.
    Assign { var: VarId, value: Expr, loc: Loc },
    /// `arr[idx] = value` — store to a global array; data transfer for the
    /// value, *address use* for `idx`.
    Store {
        arr: ArrId,
        idx: Expr,
        value: Expr,
        loc: Loc,
    },
    /// Two-way branch. The condition's defining node is a *control use*;
    /// it does not extend the dataflow, matching DDGs' lack of control-flow
    /// information (paper §3).
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        loc: Loc,
    },
    /// Counted loop `for (var = from; var < to; var += step)`.
    ///
    /// The induction-variable update and bound test are implicit: a counted
    /// loop is the canonical case that generalized iterator recognition
    /// identifies, so lowering already separates this traversal bookkeeping
    /// from the loop body's computation.
    For {
        id: LoopId,
        var: VarId,
        from: Expr,
        to: Expr,
        step: i64,
        body: Vec<Stmt>,
        loc: Loc,
    },
    /// General loop with a traced condition. Iterator recognition
    /// ([`crate::iter_rec`]) later classifies its induction updates.
    While {
        id: LoopId,
        cond: Expr,
        body: Vec<Stmt>,
        loc: Loc,
    },
    /// Expression evaluated for its effects (i.e. a call).
    Expr { expr: Expr },
    /// Return from the current function.
    Return { value: Option<Expr>, loc: Loc },
    /// `pthread_create`: start `func(args…)` on a new thread and store the
    /// thread handle into `handle`.
    Spawn {
        func: FnId,
        args: Vec<Expr>,
        handle: VarId,
        loc: Loc,
    },
    /// `pthread_join` on a handle produced by [`Stmt::Spawn`].
    Join { handle: Expr, loc: Loc },
    /// `pthread_barrier_wait` on barrier object `bar`.
    Barrier { bar: usize, loc: Loc },
    /// `pthread_mutex_lock` on mutex object `mutex`.
    Lock { mutex: usize, loc: Loc },
    /// `pthread_mutex_unlock`.
    Unlock { mutex: usize, loc: Loc },
    /// Emit a whole array as program output (the benchmarks' `fwrite` of a
    /// result buffer). The tracer marks the defining node of every emitted
    /// cell as output-consumed, giving result-producing computation its
    /// outgoing dataflow without fabricating arcs.
    Output { arr: ArrId, loc: Loc },
}

impl Stmt {
    /// The source location of the statement, when it has one.
    pub fn loc(&self) -> Loc {
        match self {
            Stmt::Assign { loc, .. }
            | Stmt::Store { loc, .. }
            | Stmt::If { loc, .. }
            | Stmt::For { loc, .. }
            | Stmt::While { loc, .. }
            | Stmt::Return { loc, .. }
            | Stmt::Spawn { loc, .. }
            | Stmt::Join { loc, .. }
            | Stmt::Barrier { loc, .. }
            | Stmt::Lock { loc, .. }
            | Stmt::Unlock { loc, .. }
            | Stmt::Output { loc, .. } => *loc,
            Stmt::Expr { expr } => expr.loc(),
        }
    }

    /// Nested statement blocks (for structural traversals).
    pub fn blocks(&self) -> Vec<&[Stmt]> {
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Direct subexpressions of this statement.
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Assign { value, .. } => vec![value],
            Stmt::Store { idx, value, .. } => vec![idx, value],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::For { from, to, .. } => vec![from, to],
            Stmt::While { cond, .. } => vec![cond],
            Stmt::Expr { expr } => vec![expr],
            Stmt::Return { value, .. } => value.iter().collect(),
            Stmt::Spawn { args, .. } => args.iter().collect(),
            Stmt::Join { handle, .. } => vec![handle],
            Stmt::Barrier { .. }
            | Stmt::Lock { .. }
            | Stmt::Unlock { .. }
            | Stmt::Output { .. } => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OpId;
    use crate::ops::BinOp;

    #[test]
    fn loop_statement_exposes_body() {
        let body = vec![Stmt::Assign {
            var: VarId(0),
            value: Expr::Int(1),
            loc: Loc::new(3, 1),
        }];
        let s = Stmt::For {
            id: LoopId(0),
            var: VarId(1),
            from: Expr::Int(0),
            to: Expr::Int(10),
            step: 1,
            body,
            loc: Loc::new(2, 1),
        };
        assert_eq!(s.blocks().len(), 1);
        assert_eq!(s.blocks()[0].len(), 1);
        assert_eq!(s.loc(), Loc::new(2, 1));
    }

    #[test]
    fn if_statement_has_two_blocks() {
        let s = Stmt::If {
            cond: Expr::bin(
                BinOp::Lt,
                Expr::Var(VarId(0)),
                Expr::Int(4),
                OpId(0),
                Loc::NONE,
            ),
            then_body: vec![],
            else_body: vec![],
            loc: Loc::new(5, 1),
        };
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.exprs().len(), 1);
    }

    #[test]
    fn expr_stmt_loc_comes_from_expr() {
        let e = Expr::Call {
            f: FnId(0),
            args: vec![],
            loc: Loc::new(7, 2),
        };
        assert_eq!(Stmt::Expr { expr: e }.loc(), Loc::new(7, 2));
    }

    #[test]
    fn sync_statements_have_no_exprs() {
        assert!(Stmt::Barrier {
            bar: 0,
            loc: Loc::NONE
        }
        .exprs()
        .is_empty());
        assert!(Stmt::Lock {
            mutex: 0,
            loc: Loc::NONE
        }
        .exprs()
        .is_empty());
    }
}
