//! Lowering from `minc` AST to `repro-ir`, with full type checking.
//!
//! The lowering mirrors what Clang does for the constructs the analysis
//! cares about: canonical counted `for` loops become IR `For` statements
//! (traversal bookkeeping kept out of the DDG by construction), any other
//! loop becomes a `while` whose induction arithmetic is traced and later
//! classified by iterator recognition; `a[i*dim+j]` subscripts stay as
//! explicit integer arithmetic feeding address uses — exactly the shape
//! DDG simplification must strip.

use crate::ast::{Bin, Expr as AExpr, FunDef, Item, Pos, Stmt as AStmt, Ty, Un, Unit};
use repro_ir::{
    ArrId, BinOp, ContentHash, ContentHasher, Expr, FnId, Function, GlobalArray, Intrinsic, Loc,
    LoopId, OpId, Param, Program, Stmt, Type, UnOp, VarId,
};
use std::collections::HashMap;

/// One memoized per-function lowering: the lowered function plus how
/// many op/loop ids it consumed, so a cache hit can advance the
/// program-global counters exactly as the real lowering would have.
#[derive(Clone, Debug)]
pub struct CachedFnIr {
    pub func: Function,
    pub ops_used: u32,
    pub loops_used: u32,
}

/// Per-function IR memo store, implemented by the query layer (minc
/// cannot depend on it). Keys are content hashes over (program
/// environment, function source, op/loop id bases) — see
/// [`lower_with_cache`] for what the key covers and why.
pub trait FnIrCache {
    fn get(&self, key: ContentHash) -> Option<CachedFnIr>;
    fn put(&self, key: ContentHash, value: CachedFnIr);
}

/// A semantic (type/resolution) error.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

fn ty_to_ir(t: Ty) -> Type {
    match t {
        Ty::Int => Type::I64,
        Ty::Float => Type::F64,
        Ty::Bool => Type::Bool,
    }
}

/// Lowers parsed translation units (file index, file name, source, unit)
/// into one IR program.
pub fn lower(
    program_name: &str,
    units: &[(u16, String, String, Unit)],
) -> Result<Program, CompileError> {
    lower_with_cache(program_name, units, None)
}

/// [`lower`] with an optional per-function IR memo.
///
/// The cache key for a function covers everything its lowering reads:
/// the program environment from pass 1 (globals, sync objects, and the
/// full function signature table — name resolution and ids), the
/// function's own AST (via its canonical `Debug` form), its file
/// index, and the `OpId`/`LoopId` counter bases at the point it is
/// lowered. Including the bases means an edit to an *earlier* function
/// that changes how many ids it consumes correctly invalidates every
/// later function — id numbering is program-global, so those functions
/// genuinely lower differently.
pub fn lower_with_cache(
    program_name: &str,
    units: &[(u16, String, String, Unit)],
    cache: Option<&dyn FnIrCache>,
) -> Result<Program, CompileError> {
    let mut lw = Lowerer::default();

    // Pass 1: collect globals, sync objects, and function signatures.
    for (_file, _name, _src, unit) in units {
        for item in &unit.items {
            match item {
                Item::GlobalArray { name, ty, len, pos } => {
                    let id = ArrId(lw.globals.len() as u32);
                    if lw
                        .arrays
                        .insert(name.clone(), (id, ty_to_ir(*ty)))
                        .is_some()
                    {
                        return err(pos, format!("duplicate global {name}"));
                    }
                    lw.globals.push(GlobalArray {
                        id,
                        name: name.clone(),
                        elem: ty_to_ir(*ty),
                        len: *len,
                    });
                }
                Item::Mutex { name, pos } => {
                    let id = lw.n_mutexes;
                    lw.n_mutexes += 1;
                    if lw.mutexes.insert(name.clone(), id).is_some() {
                        return err(pos, format!("duplicate mutex {name}"));
                    }
                }
                Item::Barrier { name, pos } => {
                    let id = lw.n_barriers;
                    lw.n_barriers += 1;
                    if lw.barriers.insert(name.clone(), id).is_some() {
                        return err(pos, format!("duplicate barrier {name}"));
                    }
                }
                Item::Fun(f) => {
                    let id = FnId(lw.fn_order.len() as u32);
                    let sig = (
                        id,
                        f.params
                            .iter()
                            .map(|(_, t)| ty_to_ir(*t))
                            .collect::<Vec<_>>(),
                        f.ret.map(ty_to_ir),
                    );
                    if lw.fns.insert(f.name.clone(), sig).is_some() {
                        return err(&f.pos, format!("duplicate function {}", f.name));
                    }
                    lw.fn_order.push(f.name.clone());
                }
            }
        }
    }

    let Some(&(entry, ref entry_params, _)) = lw.fns.get("main") else {
        return Err(CompileError {
            message: "no main function".into(),
            line: 1,
            col: 1,
        });
    };
    if !entry_params.is_empty() && entry_params.iter().any(|&t| t != Type::I64) {
        return Err(CompileError {
            message: "main parameters must be int".into(),
            line: 1,
            col: 1,
        });
    }

    // Pass 2: lower every function, in declaration order. With a memo
    // attached, each function is keyed by (environment, AST, id bases)
    // and either replayed from the memo (advancing the id counters by
    // the recorded consumption) or lowered for real and recorded.
    let env_fp = cache.map(|_| lw.env_fingerprint());
    let mut functions: Vec<Option<Function>> = vec![None; lw.fn_order.len()];
    for (file, _name, _src, unit) in units {
        for item in &unit.items {
            if let Item::Fun(f) = item {
                let key = env_fp.map(|env| fn_ir_key(env, *file, f, lw.next_op, lw.next_loop));
                if let (Some(cache), Some(key)) = (cache, key) {
                    if let Some(hit) = cache.get(key) {
                        lw.next_op += hit.ops_used;
                        lw.next_loop += hit.loops_used;
                        let idx = hit.func.id.index();
                        functions[idx] = Some(hit.func);
                        continue;
                    }
                }
                let (op_base, loop_base) = (lw.next_op, lw.next_loop);
                let lowered = lw.lower_fn(*file, f)?;
                if let (Some(cache), Some(key)) = (cache, key) {
                    cache.put(
                        key,
                        CachedFnIr {
                            func: lowered.clone(),
                            ops_used: lw.next_op - op_base,
                            loops_used: lw.next_loop - loop_base,
                        },
                    );
                }
                let idx = lowered.id.index();
                functions[idx] = Some(lowered);
            }
        }
    }

    Ok(Program {
        name: program_name.to_string(),
        functions: functions.into_iter().map(|f| f.unwrap()).collect(),
        globals: lw.globals,
        n_mutexes: lw.n_mutexes,
        n_barriers: lw.n_barriers,
        entry,
        op_count: lw.next_op,
        loop_count: lw.next_loop,
        files: units.iter().map(|(_, n, _, _)| n.clone()).collect(),
        sources: units.iter().map(|(_, _, s, _)| s.clone()).collect(),
    })
}

fn err<V>(pos: &Pos, message: String) -> Result<V, CompileError> {
    Err(CompileError {
        message,
        line: pos.line,
        col: pos.col,
    })
}

#[derive(Default)]
struct Lowerer {
    arrays: HashMap<String, (ArrId, Type)>,
    mutexes: HashMap<String, usize>,
    barriers: HashMap<String, usize>,
    fns: HashMap<String, (FnId, Vec<Type>, Option<Type>)>,
    fn_order: Vec<String>,
    globals: Vec<GlobalArray>,
    n_mutexes: usize,
    n_barriers: usize,
    next_op: u32,
    next_loop: u32,
}

/// The memo key for one function: environment fingerprint ⊕ file
/// index ⊕ id bases ⊕ the function's canonical AST form.
fn fn_ir_key(env: ContentHash, file: u16, f: &FunDef, op_base: u32, loop_base: u32) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u64((env.0 >> 64) as u64);
    h.write_u64(env.0 as u64);
    h.write_u32(file as u32);
    h.write_u32(op_base);
    h.write_u32(loop_base);
    // The AST types derive `Debug` deterministically (field order,
    // no addresses), which makes the debug form a canonical byte
    // encoding of the parse tree — including positions, so moved
    // code re-lowers (Locs differ) rather than replaying stale ones.
    h.write_str(&format!("{f:?}"));
    h.finish()
}

impl Lowerer {
    /// Fingerprints the pass-1 environment a function lowering reads:
    /// global arrays, sync objects, and the signature table. Maps are
    /// hashed in sorted-name order — `HashMap` iteration order must
    /// never leak into a content hash.
    fn env_fingerprint(&self) -> ContentHash {
        let mut h = ContentHasher::new();
        for g in &self.globals {
            h.write_str(&g.name);
            h.write_u32(g.id.0);
            h.write_str(&format!("{:?}", g.elem));
            h.write_u64(g.len as u64);
        }
        let mut mutexes: Vec<_> = self.mutexes.iter().collect();
        mutexes.sort();
        for (name, id) in mutexes {
            h.write_str(name);
            h.write_u64(*id as u64);
        }
        let mut barriers: Vec<_> = self.barriers.iter().collect();
        barriers.sort();
        for (name, id) in barriers {
            h.write_str(name);
            h.write_u64(*id as u64);
        }
        for name in &self.fn_order {
            let (id, params, ret) = &self.fns[name];
            h.write_str(name);
            h.write_u32(id.0);
            h.write_str(&format!("{params:?}{ret:?}"));
        }
        h.finish()
    }

    fn fresh_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    fn lower_fn(&mut self, file: u16, f: &FunDef) -> Result<Function, CompileError> {
        let (id, _, ret) = self.fns[&f.name].clone();
        let mut cx = FnCx {
            lw: self,
            file,
            params: f
                .params
                .iter()
                .map(|(n, t)| Param {
                    name: n.clone(),
                    ty: ty_to_ir(*t),
                })
                .collect(),
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret,
        };
        for (i, (n, t)) in f.params.iter().enumerate() {
            cx.scopes[0].insert(n.clone(), (VarId(i as u32), ty_to_ir(*t)));
        }
        let body = cx.block(&f.body)?;
        Ok(Function {
            id,
            name: f.name.clone(),
            params: cx.params,
            locals: cx.locals,
            ret,
            body,
            loc: Loc::in_file(file, f.pos.line, f.pos.col),
        })
    }
}

struct FnCx<'l> {
    lw: &'l mut Lowerer,
    file: u16,
    params: Vec<Param>,
    locals: Vec<repro_ir::func::Local>,
    /// Lexical scopes: name → (slot, type).
    scopes: Vec<HashMap<String, (VarId, Type)>>,
    ret: Option<Type>,
}

impl FnCx<'_> {
    fn loc(&self, pos: Pos) -> Loc {
        Loc::in_file(self.file, pos.line, pos.col)
    }

    fn lookup(&self, name: &str) -> Option<(VarId, Type)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Type, pos: &Pos) -> Result<VarId, CompileError> {
        if self.scopes.last().unwrap().contains_key(name) {
            return err(pos, format!("redeclaration of {name} in the same scope"));
        }
        let id = VarId((self.params.len() + self.locals.len()) as u32);
        self.locals.push(repro_ir::func::Local {
            name: name.to_string(),
            ty,
        });
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), (id, ty));
        Ok(id)
    }

    fn block(&mut self, stmts: &[AStmt]) -> Result<Vec<Stmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let out = self.stmts(stmts);
        self.scopes.pop();
        out
    }

    fn stmts(&mut self, stmts: &[AStmt]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &AStmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match s {
            AStmt::Decl {
                ty,
                name,
                init,
                pos,
            } => {
                let irty = ty_to_ir(*ty);
                let var = self.declare(name, irty, pos)?;
                if let Some(e) = init {
                    let (value, vt) = self.expr(e)?;
                    self.check(vt, irty, &e.pos(), "initializer")?;
                    out.push(Stmt::Assign {
                        var,
                        value,
                        loc: self.loc(*pos),
                    });
                }
            }
            AStmt::Assign { name, value, pos } => {
                let Some((var, ty)) = self.lookup(name) else {
                    return err(pos, format!("unknown variable {name}"));
                };
                let (value, vt) = self.expr(value)?;
                self.check(vt, ty, pos, "assignment")?;
                out.push(Stmt::Assign {
                    var,
                    value,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Store {
                base,
                index,
                value,
                pos,
            } => {
                let Some(&(arr, elem)) = self.lw.arrays.get(base) else {
                    return err(pos, format!("unknown array {base}"));
                };
                let (idx, it) = self.expr(index)?;
                self.check(it, Type::I64, pos, "array index")?;
                let (value, vt) = self.expr(value)?;
                self.check(vt, elem, pos, "stored value")?;
                out.push(Stmt::Store {
                    arr,
                    idx,
                    value,
                    loc: self.loc(*pos),
                });
            }
            AStmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => {
                let (cond, ct) = self.expr(cond)?;
                self.check(ct, Type::Bool, pos, "if condition")?;
                let then_body = self.block(then_body)?;
                let else_body = self.block(else_body)?;
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    loc: self.loc(*pos),
                });
            }
            AStmt::For {
                init,
                cond,
                update,
                body,
                pos,
            } => {
                self.lower_for(init, cond, update, body, pos, out)?;
            }
            AStmt::While { cond, body, pos } => {
                let id = self.lw.fresh_loop();
                let (cond, ct) = self.expr(cond)?;
                self.check(ct, Type::Bool, pos, "while condition")?;
                let body = self.block(body)?;
                out.push(Stmt::While {
                    id,
                    cond,
                    body,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Return { value, pos } => {
                let value = match (value, self.ret) {
                    (Some(e), Some(rt)) => {
                        let (v, vt) = self.expr(e)?;
                        self.check(vt, rt, pos, "return value")?;
                        Some(v)
                    }
                    (None, None) => None,
                    (Some(_), None) => {
                        return err(pos, "return with value in void function".into())
                    }
                    (None, Some(_)) => return err(pos, "missing return value".into()),
                };
                out.push(Stmt::Return {
                    value,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Spawn {
                handle,
                func,
                args,
                pos,
            } => {
                let Some((hvar, hty)) = self.lookup(handle) else {
                    return err(pos, format!("unknown handle variable {handle}"));
                };
                self.check(hty, Type::I64, pos, "spawn handle")?;
                let Some((fid, ptys, _)) = self.lw.fns.get(func).cloned() else {
                    return err(pos, format!("unknown function {func}"));
                };
                if ptys.len() != args.len() {
                    return err(pos, format!("{func} takes {} args", ptys.len()));
                }
                let mut irargs = Vec::with_capacity(args.len());
                for (a, want) in args.iter().zip(ptys) {
                    let (v, vt) = self.expr(a)?;
                    self.check(vt, want, &a.pos(), "spawn argument")?;
                    irargs.push(v);
                }
                out.push(Stmt::Spawn {
                    func: fid,
                    args: irargs,
                    handle: hvar,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Join { handle, pos } => {
                let (h, ht) = self.expr(handle)?;
                self.check(ht, Type::I64, pos, "join handle")?;
                out.push(Stmt::Join {
                    handle: h,
                    loc: self.loc(*pos),
                });
            }
            AStmt::BarrierWait { name, pos } => {
                let Some(&bar) = self.lw.barriers.get(name) else {
                    return err(pos, format!("unknown barrier {name}"));
                };
                out.push(Stmt::Barrier {
                    bar,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Lock { name, pos } => {
                let Some(&mutex) = self.lw.mutexes.get(name) else {
                    return err(pos, format!("unknown mutex {name}"));
                };
                out.push(Stmt::Lock {
                    mutex,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Unlock { name, pos } => {
                let Some(&mutex) = self.lw.mutexes.get(name) else {
                    return err(pos, format!("unknown mutex {name}"));
                };
                out.push(Stmt::Unlock {
                    mutex,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Output { name, pos } => {
                let Some(&(arr, _)) = self.lw.arrays.get(name) else {
                    return err(pos, format!("unknown array {name}"));
                };
                out.push(Stmt::Output {
                    arr,
                    loc: self.loc(*pos),
                });
            }
            AStmt::Expr { expr } => {
                let pos = expr.pos();
                let (e, t) = self.expr(expr)?;
                if !matches!(e, Expr::Call { .. }) {
                    return err(&pos, "expression statement must be a call".into());
                }
                let _ = t;
                out.push(Stmt::Expr { expr: e });
            }
        }
        Ok(())
    }

    /// Lowers `for (init; cond; update)`. The canonical counted shape
    /// becomes an IR `For`; anything else desugars to init + while.
    fn lower_for(
        &mut self,
        init: &AStmt,
        cond: &AExpr,
        update: &AStmt,
        body: &[AStmt],
        pos: &Pos,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CompileError> {
        // Canonical: init `v = e1`; cond `v < e2` or `v > e2`;
        // update `v = v + c` or `v = v - c` with integer literal c.
        if let (
            AStmt::Assign {
                name: v1,
                value: from,
                ..
            },
            AExpr::Bin {
                op: rel @ (Bin::Lt | Bin::Gt),
                lhs,
                rhs: bound,
                ..
            },
            AStmt::Assign {
                name: v3,
                value: upd,
                ..
            },
        ) = (init, cond, update)
        {
            let cond_on_var = matches!(&**lhs, AExpr::Name(n, _) if n == v1);
            let step = match upd {
                AExpr::Bin {
                    op: Bin::Add,
                    lhs,
                    rhs,
                    ..
                } => match (&**lhs, &**rhs) {
                    (AExpr::Name(n, _), AExpr::Int(c, _)) if n == v1 => Some(*c),
                    (AExpr::Int(c, _), AExpr::Name(n, _)) if n == v1 => Some(*c),
                    _ => None,
                },
                AExpr::Bin {
                    op: Bin::Sub,
                    lhs,
                    rhs,
                    ..
                } => match (&**lhs, &**rhs) {
                    (AExpr::Name(n, _), AExpr::Int(c, _)) if n == v1 => Some(-*c),
                    _ => None,
                },
                _ => None,
            };
            if v1 == v3 && cond_on_var {
                if let Some(step) = step {
                    let dir_ok = (*rel == Bin::Lt && step > 0) || (*rel == Bin::Gt && step < 0);
                    if dir_ok {
                        let Some((var, vt)) = self.lookup(v1) else {
                            return err(pos, format!("unknown loop variable {v1}"));
                        };
                        self.check(vt, Type::I64, pos, "loop variable")?;
                        let (from, ft) = self.expr(from)?;
                        self.check(ft, Type::I64, pos, "loop start")?;
                        let (to, tt) = self.expr(bound)?;
                        self.check(tt, Type::I64, pos, "loop bound")?;
                        let id = self.lw.fresh_loop();
                        let body = self.block(body)?;
                        out.push(Stmt::For {
                            id,
                            var,
                            from,
                            to,
                            step,
                            body,
                            loc: self.loc(*pos),
                        });
                        return Ok(());
                    }
                }
            }
        }

        // General shape: init; while (cond) { body; update; }
        self.stmt(init, out)?;
        let id = self.lw.fresh_loop();
        let (cond, ct) = self.expr(cond)?;
        self.check(ct, Type::Bool, pos, "for condition")?;
        let mut wbody = self.block(body)?;
        self.stmt(update, &mut wbody)?;
        out.push(Stmt::While {
            id,
            cond,
            body: wbody,
            loc: self.loc(*pos),
        });
        Ok(())
    }

    fn check(&self, got: Type, want: Type, pos: &Pos, what: &str) -> Result<(), CompileError> {
        if got != want {
            return err(pos, format!("{what}: expected {want}, got {got}"));
        }
        Ok(())
    }

    /// Lowers an expression, returning its IR form and type.
    fn expr(&mut self, e: &AExpr) -> Result<(Expr, Type), CompileError> {
        match e {
            AExpr::Int(v, _) => Ok((Expr::Int(*v), Type::I64)),
            AExpr::Float(v, _) => Ok((Expr::Float(*v), Type::F64)),
            AExpr::Bool(v, _) => Ok((Expr::Bool(*v), Type::Bool)),
            AExpr::Name(n, pos) => {
                let Some((var, ty)) = self.lookup(n) else {
                    return err(pos, format!("unknown variable {n}"));
                };
                Ok((Expr::Var(var), ty))
            }
            AExpr::Index { base, index, pos } => {
                let Some(&(arr, elem)) = self.lw.arrays.get(base) else {
                    return err(pos, format!("unknown array {base}"));
                };
                let (idx, it) = self.expr(index)?;
                self.check(it, Type::I64, pos, "array index")?;
                Ok((
                    Expr::Load {
                        arr,
                        idx: Box::new(idx),
                        loc: self.loc(*pos),
                    },
                    elem,
                ))
            }
            AExpr::Un { op, arg, pos } => {
                let (a, at) = self.expr(arg)?;
                let loc = self.loc(*pos);
                match op {
                    Un::Neg => {
                        let irop = match at {
                            Type::I64 => UnOp::Neg,
                            Type::F64 => UnOp::FNeg,
                            Type::Bool => return err(pos, "cannot negate a bool".into()),
                        };
                        Ok((Expr::un(irop, a, self.lw.fresh_op(), loc), at))
                    }
                    Un::Not => {
                        self.check(at, Type::Bool, pos, "logical not")?;
                        Ok((Expr::un(UnOp::Not, a, self.lw.fresh_op(), loc), Type::Bool))
                    }
                    Un::CastInt => match at {
                        Type::I64 => Ok((a, Type::I64)),
                        Type::F64 => Ok((
                            Expr::un(UnOp::FloatToInt, a, self.lw.fresh_op(), loc),
                            Type::I64,
                        )),
                        Type::Bool => err(pos, "cannot cast bool to int".into()),
                    },
                    Un::CastFloat => match at {
                        Type::F64 => Ok((a, Type::F64)),
                        Type::I64 => Ok((
                            Expr::un(UnOp::IntToFloat, a, self.lw.fresh_op(), loc),
                            Type::F64,
                        )),
                        Type::Bool => err(pos, "cannot cast bool to float".into()),
                    },
                }
            }
            AExpr::Bin { op, lhs, rhs, pos } => {
                let (a, at) = self.expr(lhs)?;
                let (b, bt) = self.expr(rhs)?;
                if at != bt {
                    return err(pos, format!("operand types differ: {at} vs {bt}"));
                }
                let loc = self.loc(*pos);
                let (irop, rt) = self.pick_binop(*op, at, pos)?;
                Ok((Expr::bin(irop, a, b, self.lw.fresh_op(), loc), rt))
            }
            AExpr::Call { name, args, pos } => self.call(name, args, pos),
        }
    }

    fn pick_binop(&self, op: Bin, t: Type, pos: &Pos) -> Result<(BinOp, Type), CompileError> {
        use Bin::*;
        let bad = |what: &str| err::<(BinOp, Type)>(pos, format!("{what} not defined on {t}"));
        Ok(match (op, t) {
            (Add, Type::I64) => (BinOp::Add, Type::I64),
            (Add, Type::F64) => (BinOp::FAdd, Type::F64),
            (Sub, Type::I64) => (BinOp::Sub, Type::I64),
            (Sub, Type::F64) => (BinOp::FSub, Type::F64),
            (Mul, Type::I64) => (BinOp::Mul, Type::I64),
            (Mul, Type::F64) => (BinOp::FMul, Type::F64),
            (Div, Type::I64) => (BinOp::Div, Type::I64),
            (Div, Type::F64) => (BinOp::FDiv, Type::F64),
            (Rem, Type::I64) => (BinOp::Rem, Type::I64),
            (BitAnd, Type::I64) => (BinOp::And, Type::I64),
            (BitOr, Type::I64) => (BinOp::Or, Type::I64),
            (BitXor, Type::I64) => (BinOp::Xor, Type::I64),
            (Shl, Type::I64) => (BinOp::Shl, Type::I64),
            (Shr, Type::I64) => (BinOp::Shr, Type::I64),
            (Eq, Type::I64) => (BinOp::Eq, Type::Bool),
            (Ne, Type::I64) => (BinOp::Ne, Type::Bool),
            (Lt, Type::I64) => (BinOp::Lt, Type::Bool),
            (Le, Type::I64) => (BinOp::Le, Type::Bool),
            (Gt, Type::I64) => (BinOp::Gt, Type::Bool),
            (Ge, Type::I64) => (BinOp::Ge, Type::Bool),
            (Eq, Type::F64) => (BinOp::FEq, Type::Bool),
            (Ne, Type::F64) => (BinOp::FNe, Type::Bool),
            (Lt, Type::F64) => (BinOp::FLt, Type::Bool),
            (Le, Type::F64) => (BinOp::FLe, Type::Bool),
            (Gt, Type::F64) => (BinOp::FGt, Type::Bool),
            (Ge, Type::F64) => (BinOp::FGe, Type::Bool),
            (And, Type::Bool) => (BinOp::And, Type::Bool),
            (Or, Type::Bool) => (BinOp::Or, Type::Bool),
            (BitXor, Type::Bool) => (BinOp::Xor, Type::Bool),
            (Add | Sub | Mul | Div, Type::Bool) => return bad("arithmetic"),
            (Rem | BitAnd | BitOr | Shl | Shr, _) => return bad("integer op"),
            (And | Or, _) => return bad("logical op"),
            (Eq | Ne | Lt | Le | Gt | Ge, Type::Bool) => return bad("comparison"),
            (BitXor, Type::F64) => return bad("xor"),
        })
    }

    fn call(
        &mut self,
        name: &str,
        args: &[AExpr],
        pos: &Pos,
    ) -> Result<(Expr, Type), CompileError> {
        let loc = self.loc(*pos);
        // Intrinsics first.
        let unary_f64 = |this: &mut Self,
                         op: Intrinsic,
                         args: &[AExpr]|
         -> Result<(Expr, Type), CompileError> {
            if args.len() != 1 {
                return err(pos, format!("{name} takes 1 argument"));
            }
            let (a, at) = this.expr(&args[0])?;
            this.check(at, Type::F64, pos, name)?;
            let id = this.lw.fresh_op();
            Ok((
                Expr::Intr {
                    op,
                    args: vec![a],
                    id,
                    loc,
                },
                Type::F64,
            ))
        };
        match name {
            "sqrt" => return unary_f64(self, Intrinsic::Sqrt, args),
            "fabs" => return unary_f64(self, Intrinsic::FAbs, args),
            "floor" => return unary_f64(self, Intrinsic::Floor, args),
            "sin" => return unary_f64(self, Intrinsic::Sin, args),
            "cos" => return unary_f64(self, Intrinsic::Cos, args),
            "exp" => return unary_f64(self, Intrinsic::Exp, args),
            "log" => return unary_f64(self, Intrinsic::Log, args),
            "abs" => {
                if args.len() != 1 {
                    return err(pos, "abs takes 1 argument".into());
                }
                let (a, at) = self.expr(&args[0])?;
                self.check(at, Type::I64, pos, "abs")?;
                let id = self.lw.fresh_op();
                return Ok((
                    Expr::Intr {
                        op: Intrinsic::Abs,
                        args: vec![a],
                        id,
                        loc,
                    },
                    Type::I64,
                ));
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return err(pos, format!("{name} takes 2 arguments"));
                }
                let (a, at) = self.expr(&args[0])?;
                let (b, bt) = self.expr(&args[1])?;
                if at != bt {
                    return err(pos, format!("{name}: operand types differ"));
                }
                let op = match (name, at) {
                    ("min", Type::I64) => BinOp::Min,
                    ("max", Type::I64) => BinOp::Max,
                    ("min", Type::F64) => BinOp::FMin,
                    ("max", Type::F64) => BinOp::FMax,
                    _ => return err(pos, format!("{name} not defined on {at}")),
                };
                return Ok((Expr::bin(op, a, b, self.lw.fresh_op(), loc), at));
            }
            "select" => {
                if args.len() != 3 {
                    return err(pos, "select takes 3 arguments".into());
                }
                let (c, ct) = self.expr(&args[0])?;
                self.check(ct, Type::Bool, pos, "select condition")?;
                let (a, at) = self.expr(&args[1])?;
                let (b, bt) = self.expr(&args[2])?;
                if at != bt {
                    return err(pos, "select: branch types differ".into());
                }
                let id = self.lw.fresh_op();
                return Ok((
                    Expr::Intr {
                        op: Intrinsic::Select,
                        args: vec![c, a, b],
                        id,
                        loc,
                    },
                    at,
                ));
            }
            _ => {}
        }
        // User function.
        let Some((fid, ptys, ret)) = self.lw.fns.get(name).cloned() else {
            return err(pos, format!("unknown function {name}"));
        };
        if ptys.len() != args.len() {
            return err(pos, format!("{name} takes {} args", ptys.len()));
        }
        let mut irargs = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(ptys) {
            let (v, vt) = self.expr(a)?;
            self.check(vt, want, &a.pos(), "argument")?;
            irargs.push(v);
        }
        let Some(ret) = ret else {
            // Void calls are only legal in statement position; the caller
            // (stmt) accepts them, expression contexts reject via check().
            return Ok((
                Expr::Call {
                    f: fid,
                    args: irargs,
                    loc,
                },
                Type::Bool,
            ));
        };
        Ok((
            Expr::Call {
                f: fid,
                args: irargs,
                loc,
            },
            ret,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn lowers_and_validates_a_full_program() {
        let src = r#"
float data[8];
float out[1];

float square(float x) {
    return x * x;
}

void main() {
    int i;
    float acc = 0.0;
    for (i = 0; i < 8; i++) {
        acc = acc + square(data[i]);
    }
    out[0] = acc;
    output(out);
}
"#;
        let p = compile("sq", src).unwrap();
        assert!(repro_ir::validate(&p).is_ok());
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.loop_count, 1);
        // The for loop is canonical: lowered to Stmt::For.
        let main = p.function_by_name("main").unwrap();
        assert!(main
            .body
            .iter()
            .any(|s| matches!(s, Stmt::For { step: 1, .. })));
    }

    #[test]
    fn non_canonical_for_becomes_while() {
        let src = r#"
void main(int nproc) {
    int k;
    int s = 0;
    for (k = 0; k < 16; k = k + nproc) {
        s = s + k;
    }
}
"#;
        let p = compile("cyclic", src).unwrap();
        assert!(repro_ir::validate(&p).is_ok());
        let main = p.function_by_name("main").unwrap();
        assert!(
            main.body.iter().any(|s| matches!(s, Stmt::While { .. })),
            "variable-step loop lowers to while"
        );
        // Iterator recognition must classify the k update.
        let info = repro_ir::iter_rec::analyze(&p);
        assert!(!info.iterator_ops.is_empty());
    }

    #[test]
    fn downward_loops_lower_to_negative_step() {
        let src = "void main() { int i; int s = 0; for (i = 7; i > 0; i--) { s = s + i; } }";
        let p = compile("down", src).unwrap();
        let main = p.function_by_name("main").unwrap();
        assert!(main
            .body
            .iter()
            .any(|s| matches!(s, Stmt::For { step: -1, .. })));
    }

    #[test]
    fn threads_and_sync_lower() {
        let src = r#"
float buf[4];
mutex m;
barrier b;

void worker(int tid) {
    lock(m);
    buf[tid] = 1.0;
    unlock(m);
    barrier_wait(b);
}

void main() {
    int h0;
    int h1;
    h0 = spawn worker(0);
    h1 = spawn worker(1);
    join(h0);
    join(h1);
}
"#;
        let p = compile("thr", src).unwrap();
        assert!(repro_ir::validate(&p).is_ok());
        assert_eq!(p.n_mutexes, 1);
        assert_eq!(p.n_barriers, 1);
    }

    #[test]
    fn cross_unit_calls_work() {
        let a = "float helper(float x) { return x + 1.0; }";
        let b = r#"
float out[1];
void main() {
    out[0] = helper(1.0);
    output(out);
}
"#;
        let p = crate::compile_files("multi", &[("a.mc", a), ("b.mc", b)]).unwrap();
        assert!(repro_ir::validate(&p).is_ok());
        assert_eq!(p.files.len(), 2);
        // helper's ops carry file index 0, main's file index 1.
        let helper = p.function_by_name("helper").unwrap();
        assert_eq!(helper.loc.file, 0);
        let main = p.function_by_name("main").unwrap();
        assert_eq!(main.loc.file, 1);
    }

    #[test]
    fn type_errors_are_caught() {
        let src = "void main() { int x; x = 1.5; }";
        let e = compile("bad", src).unwrap_err();
        assert!(e.message.contains("expected i64"), "{e}");

        let src2 = "void main() { float x; x = sqrt(2); }";
        let e2 = compile("bad2", src2).unwrap_err();
        assert!(e2.message.contains("sqrt"), "{e2}");
    }

    #[test]
    fn scoping_allows_shadowing_in_inner_blocks() {
        let src = r#"
void main() {
    int i;
    for (i = 0; i < 2; i++) {
        float x = 1.0;
        x = x + 1.0;
    }
    if (true) {
        float x = 2.0;
        x = x * 2.0;
    }
}
"#;
        let p = compile("scope", src).unwrap();
        assert!(repro_ir::validate(&p).is_ok());
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(compile("u1", "void main() { x = 1; }").is_err());
        assert!(compile("u2", "void main() { unknown_fn(); }").is_err());
        assert!(compile("u3", "void main() { barrier_wait(nope); }").is_err());
    }

    #[test]
    fn locations_point_into_source() {
        let src = "float d[2];\nvoid main() {\n  d[0] = d[1] * 2.0;\n}\n";
        let p = compile("loc", src).unwrap();
        let main = p.function_by_name("main").unwrap();
        let Stmt::Store { value, .. } = &main.body[0] else {
            panic!()
        };
        let Expr::Bin { loc, .. } = value else {
            panic!()
        };
        assert_eq!(loc.line, 3);
        assert_eq!(p.source_line(*loc).unwrap().trim(), "d[0] = d[1] * 2.0;");
    }
}
