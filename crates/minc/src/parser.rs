//! Recursive-descent parser with precedence climbing.

use crate::ast::*;
use crate::lexer::{Token, TokenKind as T};

/// A syntax error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

/// Parses one translation unit.
pub fn parse(tokens: &[Token]) -> Result<Unit, ParseError> {
    let mut p = Parser { tokens, i: 0 };
    let mut items = Vec::new();
    while !p.at(&T::Eof) {
        items.push(p.item()?);
    }
    Ok(Unit { items })
}

struct Parser<'t> {
    tokens: &'t [Token],
    i: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &T {
        &self.tokens[self.i].kind
    }

    fn peek2(&self) -> &T {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.tokens[self.i].line,
            col: self.tokens[self.i].col,
        }
    }

    fn at(&self, k: &T) -> bool {
        self.peek() == k
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.i];
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn err<V>(&self, message: impl Into<String>) -> Result<V, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.tokens[self.i].line,
            col: self.tokens[self.i].col,
        })
    }

    fn expect(&mut self, k: T, what: &str) -> Result<(), ParseError> {
        if self.peek() == &k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            T::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn scalar_ty(&mut self) -> Result<Ty, ParseError> {
        let t = match self.peek() {
            T::KwInt => Ty::Int,
            T::KwFloat => Ty::Float,
            T::KwBool => Ty::Bool,
            other => return self.err(format!("expected a type, found {other:?}")),
        };
        self.bump();
        Ok(t)
    }

    // ---- items ----

    fn item(&mut self) -> Result<Item, ParseError> {
        let pos = self.pos();
        match self.peek() {
            T::KwMutex => {
                self.bump();
                let name = self.ident("mutex name")?;
                self.expect(T::Semi, ";")?;
                Ok(Item::Mutex { name, pos })
            }
            T::KwBarrier => {
                self.bump();
                let name = self.ident("barrier name")?;
                self.expect(T::Semi, ";")?;
                Ok(Item::Barrier { name, pos })
            }
            T::KwVoid => {
                self.bump();
                let name = self.ident("function name")?;
                self.fun(name, None, pos)
            }
            T::KwInt | T::KwFloat | T::KwBool => {
                let ty = self.scalar_ty()?;
                let name = self.ident("name")?;
                match self.peek() {
                    T::LBracket => {
                        self.bump();
                        let len = match self.peek().clone() {
                            T::Int(n) if n >= 0 => {
                                self.bump();
                                n as usize
                            }
                            _ => return self.err("expected array length literal"),
                        };
                        self.expect(T::RBracket, "]")?;
                        self.expect(T::Semi, ";")?;
                        Ok(Item::GlobalArray { name, ty, len, pos })
                    }
                    T::LParen => self.fun(name, Some(ty), pos),
                    other => self.err(format!(
                        "expected array or function declaration, found {other:?}"
                    )),
                }
            }
            other => self.err(format!("expected a top-level item, found {other:?}")),
        }
    }

    fn fun(&mut self, name: String, ret: Option<Ty>, pos: Pos) -> Result<Item, ParseError> {
        self.expect(T::LParen, "(")?;
        let mut params = Vec::new();
        if !self.at(&T::RParen) {
            loop {
                let ty = self.scalar_ty()?;
                let pname = self.ident("parameter name")?;
                params.push((pname, ty));
                if self.at(&T::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(T::RParen, ")")?;
        let body = self.block()?;
        Ok(Item::Fun(FunDef {
            name,
            params,
            ret,
            body,
            pos,
        }))
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(T::LBrace, "{")?;
        let mut stmts = Vec::new();
        while !self.at(&T::RBrace) {
            if self.at(&T::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            T::KwInt | T::KwFloat | T::KwBool => {
                let ty = self.scalar_ty()?;
                let name = self.ident("variable name")?;
                if self.at(&T::Assign) && self.peek2() == &T::KwSpawn {
                    // Declare first, then `h = spawn f(...)` — keeps the
                    // statement model flat.
                    return self.err("declare the handle first: `int h; h = spawn f(...);`");
                }
                let init = if self.at(&T::Assign) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    pos,
                })
            }
            T::KwIf => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(T::RParen, ")")?;
                let then_body = self.block()?;
                let else_body = if self.at(&T::KwElse) {
                    self.bump();
                    if self.at(&T::KwIf) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    vec![]
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            T::KwFor => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let init = Box::new(self.simple_stmt()?);
                self.expect(T::Semi, ";")?;
                let cond = self.expr()?;
                self.expect(T::Semi, ";")?;
                let update = Box::new(self.simple_stmt()?);
                self.expect(T::RParen, ")")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                    pos,
                })
            }
            T::KwWhile => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(T::RParen, ")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            T::KwReturn => {
                self.bump();
                let value = if self.at(&T::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Return { value, pos })
            }
            T::KwJoin => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let handle = self.expr()?;
                self.expect(T::RParen, ")")?;
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Join { handle, pos })
            }
            T::KwBarrierWait => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let name = self.ident("barrier name")?;
                self.expect(T::RParen, ")")?;
                self.expect(T::Semi, ";")?;
                Ok(Stmt::BarrierWait { name, pos })
            }
            T::KwLock => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let name = self.ident("mutex name")?;
                self.expect(T::RParen, ")")?;
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Lock { name, pos })
            }
            T::KwUnlock => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let name = self.ident("mutex name")?;
                self.expect(T::RParen, ")")?;
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Unlock { name, pos })
            }
            T::KwOutput => {
                self.bump();
                self.expect(T::LParen, "(")?;
                let name = self.ident("array name")?;
                self.expect(T::RParen, ")")?;
                self.expect(T::Semi, ";")?;
                Ok(Stmt::Output { name, pos })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(T::Semi, ";")?;
                Ok(s)
            }
        }
    }

    /// Assignment, store, increment, spawn-assign, or expression — the
    /// statement forms legal in `for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        if let T::Ident(name) = self.peek().clone() {
            match self.peek2().clone() {
                T::Assign => {
                    self.bump();
                    self.bump();
                    if self.at(&T::KwSpawn) {
                        self.bump();
                        let (func, args) = self.call_tail()?;
                        return Ok(Stmt::Spawn {
                            handle: name,
                            func,
                            args,
                            pos,
                        });
                    }
                    let value = self.expr()?;
                    return Ok(Stmt::Assign { name, value, pos });
                }
                T::PlusPlus | T::MinusMinus => {
                    let down = self.peek2() == &T::MinusMinus;
                    self.bump();
                    self.bump();
                    let op = if down { Bin::Sub } else { Bin::Add };
                    return Ok(Stmt::Assign {
                        name: name.clone(),
                        value: Expr::Bin {
                            op,
                            lhs: Box::new(Expr::Name(name, pos)),
                            rhs: Box::new(Expr::Int(1, pos)),
                            pos,
                        },
                        pos,
                    });
                }
                T::LBracket => {
                    self.bump();
                    self.bump();
                    let index = self.expr()?;
                    self.expect(T::RBracket, "]")?;
                    self.expect(T::Assign, "=")?;
                    let value = self.expr()?;
                    return Ok(Stmt::Store {
                        base: name,
                        index,
                        value,
                        pos,
                    });
                }
                _ => {}
            }
        }
        let expr = self.expr()?;
        Ok(Stmt::Expr { expr })
    }

    fn call_tail(&mut self) -> Result<(String, Vec<Expr>), ParseError> {
        let func = self.ident("function name")?;
        self.expect(T::LParen, "(")?;
        let mut args = Vec::new();
        if !self.at(&T::RParen) {
            loop {
                args.push(self.expr()?);
                if self.at(&T::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(T::RParen, ")")?;
        Ok((func, args))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                T::OrOr => (Bin::Or, 1),
                T::AndAnd => (Bin::And, 2),
                T::Pipe => (Bin::BitOr, 3),
                T::Caret => (Bin::BitXor, 4),
                T::Amp => (Bin::BitAnd, 5),
                T::Eq => (Bin::Eq, 6),
                T::Ne => (Bin::Ne, 6),
                T::Lt => (Bin::Lt, 7),
                T::Le => (Bin::Le, 7),
                T::Gt => (Bin::Gt, 7),
                T::Ge => (Bin::Ge, 7),
                T::Shl => (Bin::Shl, 8),
                T::Shr => (Bin::Shr, 8),
                T::Plus => (Bin::Add, 9),
                T::Minus => (Bin::Sub, 9),
                T::Star => (Bin::Mul, 10),
                T::Slash => (Bin::Div, 10),
                T::Percent => (Bin::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            T::Minus => {
                self.bump();
                let arg = self.unary()?;
                Ok(Expr::Un {
                    op: Un::Neg,
                    arg: Box::new(arg),
                    pos,
                })
            }
            T::Bang => {
                self.bump();
                let arg = self.unary()?;
                Ok(Expr::Un {
                    op: Un::Not,
                    arg: Box::new(arg),
                    pos,
                })
            }
            // Casts: `(int) e`, `(float) e`.
            T::LParen if matches!(self.peek2(), T::KwInt | T::KwFloat) => {
                self.bump();
                let op = if self.at(&T::KwInt) {
                    Un::CastInt
                } else {
                    Un::CastFloat
                };
                self.bump();
                self.expect(T::RParen, ")")?;
                let arg = self.unary()?;
                Ok(Expr::Un {
                    op,
                    arg: Box::new(arg),
                    pos,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            T::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            T::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, pos))
            }
            T::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            T::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            T::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(T::RParen, ")")?;
                Ok(e)
            }
            T::Ident(name) => {
                self.bump();
                match self.peek() {
                    T::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.at(&T::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if self.at(&T::Comma) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(T::RParen, ")")?;
                        Ok(Expr::Call { name, args, pos })
                    }
                    T::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(T::RBracket, "]")?;
                        Ok(Expr::Index {
                            base: name,
                            index: Box::new(index),
                            pos,
                        })
                    }
                    _ => Ok(Expr::Name(name, pos)),
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_sync_objects() {
        let u = parse_src("float data[64];\nmutex m;\nbarrier b;\n");
        assert_eq!(u.items.len(), 3);
        assert!(matches!(
            &u.items[0],
            Item::GlobalArray { name, ty: Ty::Float, len: 64, .. } if name == "data"
        ));
        assert!(matches!(&u.items[1], Item::Mutex { name, .. } if name == "m"));
        assert!(matches!(&u.items[2], Item::Barrier { name, .. } if name == "b"));
    }

    #[test]
    fn parses_function_with_loop() {
        let u = parse_src(
            "void main() {\n  int i;\n  for (i = 0; i < 10; i++) {\n    i = i;\n  }\n}\n",
        );
        let Item::Fun(f) = &u.items[0] else { panic!() };
        assert_eq!(f.name, "main");
        assert!(f.ret.is_none());
        assert!(matches!(&f.body[1], Stmt::For { .. }));
    }

    #[test]
    fn precedence_is_c_like() {
        let u = parse_src("void f() { int x; x = 1 + 2 * 3 < 4 & 5; }");
        let Item::Fun(f) = &u.items[0] else { panic!() };
        let Stmt::Assign { value, .. } = &f.body[1] else {
            panic!()
        };
        // & binds loosest: (1+2*3 < 4) & 5
        let Expr::Bin {
            op: Bin::BitAnd,
            lhs,
            ..
        } = value
        else {
            panic!("expected & at top, got {value:?}")
        };
        assert!(matches!(**lhs, Expr::Bin { op: Bin::Lt, .. }));
    }

    #[test]
    fn parses_spawn_join_and_casts() {
        let u = parse_src("void main() { int h; h = spawn worker(1, (float)2); join(h); }");
        let Item::Fun(f) = &u.items[0] else { panic!() };
        assert!(matches!(&f.body[1], Stmt::Spawn { handle, func, args, .. }
            if handle == "h" && func == "worker" && args.len() == 2));
        assert!(matches!(&f.body[2], Stmt::Join { .. }));
    }

    #[test]
    fn parses_if_else_chain() {
        let u = parse_src("void f(int x) { if (x < 0) { x = 0; } else if (x > 9) { x = 9; } }");
        let Item::Fun(f) = &u.items[0] else { panic!() };
        let Stmt::If { else_body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_store_and_index() {
        let u = parse_src("void f() { a[i * 2] = b[i] + 1.0; }");
        let Item::Fun(f) = &u.items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::Store { base, .. } if base == "a"));
    }

    #[test]
    fn rejects_bad_syntax() {
        let toks = lex("void f() { int ; }").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn parenthesized_casts_vs_grouping() {
        let u = parse_src("void f() { float x; x = (float)(1 + 2); }");
        let Item::Fun(f) = &u.items[0] else { panic!() };
        let Stmt::Assign { value, .. } = &f.body[1] else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::Un {
                op: Un::CastFloat,
                ..
            }
        ));
    }
}
