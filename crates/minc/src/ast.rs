//! Abstract syntax of `minc`.

/// Scalar types of the surface language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    Int,
    Float,
    Bool,
}

/// A source position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

/// Binary operators (C-level; lowering picks int/float IR ops by type).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Un {
    Neg,
    Not,
    CastInt,
    CastFloat,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(i64, Pos),
    Float(f64, Pos),
    Bool(bool, Pos),
    /// Variable or global-array reference (resolved during lowering).
    Name(String, Pos),
    Index {
        base: String,
        index: Box<Expr>,
        pos: Pos,
    },
    Un {
        op: Un,
        arg: Box<Expr>,
        pos: Pos,
    },
    Bin {
        op: Bin,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Function or intrinsic call.
    Call {
        name: String,
        args: Vec<Expr>,
        pos: Pos,
    },
}

impl Expr {
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p) | Expr::Float(_, p) | Expr::Bool(_, p) | Expr::Name(_, p) => *p,
            Expr::Index { pos, .. }
            | Expr::Un { pos, .. }
            | Expr::Bin { pos, .. }
            | Expr::Call { pos, .. } => *pos,
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `int x;` / `float x = e;`
    Decl {
        ty: Ty,
        name: String,
        init: Option<Expr>,
        pos: Pos,
    },
    /// `x = e;`
    Assign {
        name: String,
        value: Expr,
        pos: Pos,
    },
    /// `a[i] = e;`
    Store {
        base: String,
        index: Expr,
        value: Expr,
        pos: Pos,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        pos: Pos,
    },
    /// `for (init; cond; update)`. Lowering recognizes the canonical
    /// counted shape (`x = e1; x < e2; x = x + C`) and emits an IR `For`;
    /// anything else becomes a `while` whose induction arithmetic is traced
    /// (and later removed by iterator recognition).
    For {
        init: Box<Stmt>,
        cond: Expr,
        update: Box<Stmt>,
        body: Vec<Stmt>,
        pos: Pos,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        pos: Pos,
    },
    Return {
        value: Option<Expr>,
        pos: Pos,
    },
    /// `h = spawn f(args);` (h must be a declared int)
    Spawn {
        handle: String,
        func: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// `join(h);`
    Join {
        handle: Expr,
        pos: Pos,
    },
    /// `barrier_wait(name);`
    BarrierWait {
        name: String,
        pos: Pos,
    },
    /// `lock(name);` / `unlock(name);`
    Lock {
        name: String,
        pos: Pos,
    },
    Unlock {
        name: String,
        pos: Pos,
    },
    /// `output(arr);`
    Output {
        name: String,
        pos: Pos,
    },
    /// expression statement (void call)
    Expr {
        expr: Expr,
    },
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunDef {
    pub name: String,
    pub params: Vec<(String, Ty)>,
    pub ret: Option<Ty>,
    pub body: Vec<Stmt>,
    pub pos: Pos,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `float data[64];`
    GlobalArray {
        name: String,
        ty: Ty,
        len: usize,
        pos: Pos,
    },
    /// `mutex m;`
    Mutex {
        name: String,
        pos: Pos,
    },
    /// `barrier b;`
    Barrier {
        name: String,
        pos: Pos,
    },
    Fun(FunDef),
}

/// One parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Unit {
    pub items: Vec<Item>,
}
