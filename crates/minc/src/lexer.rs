//! Tokenizer with line/column tracking.

/// Kinds of tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    // Literals and names
    Int(i64),
    Float(f64),
    Ident(String),
    // Keywords
    KwInt,
    KwFloat,
    KwBool,
    KwVoid,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwReturn,
    KwTrue,
    KwFalse,
    KwSpawn,
    KwJoin,
    KwBarrierWait,
    KwLock,
    KwUnlock,
    KwOutput,
    KwMutex,
    KwBarrier,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Bang,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusPlus,
    MinusMinus,
    Eof,
}

/// A token with its source position (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

/// Tokenizes a source string. `//` and `/* */` comments are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    bump!();
                }
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line: tline,
                        col: tcol,
                    });
                }
                bump!();
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    bump!();
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        bump!();
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let text = &source[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text}"),
                        line: tline,
                        col: tcol,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad int literal {text}"),
                        line: tline,
                        col: tcol,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let text = &source[start..i];
                let kind = match text {
                    "int" => TokenKind::KwInt,
                    "float" => TokenKind::KwFloat,
                    "bool" => TokenKind::KwBool,
                    "void" => TokenKind::KwVoid,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "for" => TokenKind::KwFor,
                    "while" => TokenKind::KwWhile,
                    "return" => TokenKind::KwReturn,
                    "true" => TokenKind::KwTrue,
                    "false" => TokenKind::KwFalse,
                    "spawn" => TokenKind::KwSpawn,
                    "join" => TokenKind::KwJoin,
                    "barrier_wait" => TokenKind::KwBarrierWait,
                    "lock" => TokenKind::KwLock,
                    "unlock" => TokenKind::KwUnlock,
                    "output" => TokenKind::KwOutput,
                    "mutex" => TokenKind::KwMutex,
                    "barrier" => TokenKind::KwBarrier,
                    _ => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let (kind, len) = match two {
                    "==" => (TokenKind::Eq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    "<<" => (TokenKind::Shl, 2),
                    ">>" => (TokenKind::Shr, 2),
                    "++" => (TokenKind::PlusPlus, 2),
                    "--" => (TokenKind::MinusMinus, 2),
                    _ => match c {
                        b'(' => (TokenKind::LParen, 1),
                        b')' => (TokenKind::RParen, 1),
                        b'{' => (TokenKind::LBrace, 1),
                        b'}' => (TokenKind::RBrace, 1),
                        b'[' => (TokenKind::LBracket, 1),
                        b']' => (TokenKind::RBracket, 1),
                        b',' => (TokenKind::Comma, 1),
                        b';' => (TokenKind::Semi, 1),
                        b'=' => (TokenKind::Assign, 1),
                        b'+' => (TokenKind::Plus, 1),
                        b'-' => (TokenKind::Minus, 1),
                        b'*' => (TokenKind::Star, 1),
                        b'/' => (TokenKind::Slash, 1),
                        b'%' => (TokenKind::Percent, 1),
                        b'&' => (TokenKind::Amp, 1),
                        b'|' => (TokenKind::Pipe, 1),
                        b'^' => (TokenKind::Caret, 1),
                        b'!' => (TokenKind::Bang, 1),
                        b'<' => (TokenKind::Lt, 1),
                        b'>' => (TokenKind::Gt, 1),
                        other => {
                            return Err(LexError {
                                message: format!("unexpected character {:?}", other as char),
                                line: tline,
                                col: tcol,
                            })
                        }
                    },
                };
                for _ in 0..len {
                    bump!();
                }
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("float x = 1.5;"),
            vec![
                TokenKind::KwFloat,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Float(1.5),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_and_comments() {
        assert_eq!(
            kinds("a<=b // c\n!= /* block */ d++"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::PlusPlus,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("x\n  y").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("forx")[0], TokenKind::Ident("forx".into()));
        assert_eq!(kinds("for")[0], TokenKind::KwFor);
        assert_eq!(kinds("barrier_wait")[0], TokenKind::KwBarrierWait);
    }
}
