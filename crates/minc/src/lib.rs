//! `minc` — a mini-C frontend for the pattern-analysis reproduction.
//!
//! The paper analyses legacy Pthreaded C programs. This crate provides the
//! closest practical equivalent for the reproduction: a C-flavored surface
//! language with Pthreads-style threading (`spawn`/`join`,
//! `barrier_wait`, `lock`/`unlock`) that compiles to `repro-ir`. The
//! Starbench ports in the `starbench` crate are written in it, so the
//! pattern finder's reports can point at real source lines (paper Fig. 6)
//! and fused patterns can genuinely span *translation units* (separate
//! `minc` files compiled into one program — paper §2, challenge 4).
//!
//! The language, in brief:
//!
//! ```c
//! float data[64];            // global arrays (host-resizable inputs)
//! mutex m; barrier b;        // sync objects
//!
//! float dist(float x, float y) { float d = x - y; return d * d; }
//!
//! void worker(int pid, int nproc) {
//!     int k; float acc = 0.0;
//!     for (k = pid; k < 64; k = k + nproc) { acc = acc + dist(data[k], data[0]); }
//!     barrier_wait(b);
//! }
//!
//! void main() {
//!     int t0 = spawn worker(0, 2); int t1 = spawn worker(1, 2);
//!     join(t0); join(t1);
//!     output(data);          // fwrite-style result emission
//! }
//! ```
//!
//! Types are `int` (i64), `float` (f64), and `bool`, with explicit casts
//! (`(int)x`, `(float)n`) and no implicit conversions. `for` loops in the
//! canonical C shape lower to counted IR loops; anything else is a `while`.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lexer::{LexError, Token, TokenKind};
pub use lower::{lower, lower_with_cache, CachedFnIr, CompileError, FnIrCache};
pub use parser::parse;

/// Compiles one translation unit into an IR program.
pub fn compile(name: &str, source: &str) -> Result<repro_ir::Program, CompileError> {
    compile_files(name, &[("main.mc", source)])
}

/// Compiles several translation units (shared global namespace) into one
/// program — the moral equivalent of linking objects into a binary.
pub fn compile_files(
    program_name: &str,
    files: &[(&str, &str)],
) -> Result<repro_ir::Program, CompileError> {
    compile_files_with_cache(program_name, files, None)
}

/// [`compile_files`] with a per-function IR memo: functions whose
/// source (and pass-1 environment, and id-counter bases) are unchanged
/// since a previous compile replay their lowered IR instead of being
/// type-checked and lowered again. The resulting program is identical
/// to an uncached compile (`lower_with_cache` documents the key).
pub fn compile_files_with_cache(
    program_name: &str,
    files: &[(&str, &str)],
    cache: Option<&dyn FnIrCache>,
) -> Result<repro_ir::Program, CompileError> {
    let mut units = Vec::new();
    for (file_idx, (file_name, source)) in files.iter().enumerate() {
        let tokens = lexer::lex(source).map_err(|e| CompileError {
            message: format!("{file_name}: {}", e.message),
            line: e.line,
            col: e.col,
        })?;
        let unit = parser::parse(&tokens).map_err(|e| CompileError {
            message: format!("{file_name}: {}", e.message),
            line: e.line,
            col: e.col,
        })?;
        units.push((
            file_idx as u16,
            file_name.to_string(),
            source.to_string(),
            unit,
        ));
    }
    lower::lower_with_cache(program_name, &units, cache)
}
