//! Property tests of the front end: the parser never panics, and
//! well-formed generated programs compile, validate, and evaluate like
//! their Rust mirror.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input must produce Ok or Err — never a panic.
    #[test]
    fn lexer_and_parser_total(src in "[ -~\\n]{0,200}") {
        let _ = minc::compile("fuzz", &src);
    }

    /// Structured fuzz: random statements drawn from valid fragments
    /// still never panic even when semantically wrong.
    #[test]
    fn structured_fragments_total(
        frags in prop::collection::vec(0usize..8, 0..12),
    ) {
        let bank = [
            "int x = 1;",
            "float y = 2.0;",
            "for (i = 0; i < 4; i++) { }",
            "if (true) { } else { }",
            "while (false) { }",
            "z = unknown(1, 2);",
            "a[i] = b[j] * 2.0;",
            "return 1;",
        ];
        let body: String = frags.iter().map(|&i| bank[i]).collect::<Vec<_>>().join("\n");
        let src = format!("void main() {{\n{body}\n}}\n");
        let _ = minc::compile("fuzz", &src);
    }

    /// Generated straight-line arithmetic agrees with a Rust oracle.
    #[test]
    fn arithmetic_agrees_with_oracle(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in 1i64..100,
        shift in 0i64..8,
    ) {
        let src = format!(
            "int out[3];\nvoid main() {{\n\
             out[0] = ({a} + {b}) * {c};\n\
             out[1] = ({a} ^ {b}) & 255;\n\
             out[2] = ({c} << {shift}) | 1;\n\
             output(out);\n}}\n"
        );
        let p = minc::compile("arith", &src).unwrap();
        prop_assert!(repro_ir::validate(&p).is_ok());
        let r = trace::run(&p, &trace::RunConfig::default()).unwrap();
        let out = r.i64s("out");
        prop_assert_eq!(out[0], (a + b) * c);
        prop_assert_eq!(out[1], (a ^ b) & 255);
        prop_assert_eq!(out[2], (c << shift) | 1);
    }

    /// Loops with random bounds iterate the right number of times.
    #[test]
    fn loop_trip_counts(from in -20i64..20, to in -20i64..20) {
        let src = format!(
            "int out[1];\nvoid main() {{\n  int n = 0;\n  int i;\n  \
             for (i = {from}; i < {to}; i++) {{\n    n = n + 1;\n  }}\n  \
             out[0] = n;\n  output(out);\n}}\n"
        );
        let p = minc::compile("loop", &src).unwrap();
        let r = trace::run(&p, &trace::RunConfig::default()).unwrap();
        prop_assert_eq!(r.i64s("out")[0], (to - from).max(0));
    }
}
