//! The structural-hash match cache.
//!
//! Matching dominates finder time (paper Fig. 7: ≈ 48%), and batches of
//! related analyses — the seq and Pthreads versions of one benchmark, or
//! one benchmark at several input scales — keep presenting the matcher
//! with sub-DDGs that are *op-isomorphic at the group level*: same label
//! multisets, flags, arc and reachability shape, static-op equality
//! pattern. The cache memoizes match outcomes under the canonical
//! [`ddg::StructuralKey`] of the compacted view, so the second such view
//! skips the models entirely.
//!
//! Soundness rests on two facts, both enforced elsewhere:
//!
//! - the pattern models consume *only* the facts the key encodes (the
//!   `ddg` crate's property tests check that equal keys imply equal
//!   matcher-visible facts — no false hits);
//! - a matcher is a deterministic function of those facts plus the
//!   dispatch class and time budget, which are part of the cache key.
//!
//! Because a pattern's metadata (source lines, label strings, node ids)
//! is *not* structural, hits store the match in **group-index space**
//! and rebuild the concrete [`Pattern`] against the probing sub-DDG's
//! own groups and graph — a hit on an isomorphic view from another
//! program still reports the probing program's source locations, and is
//! byte-identical to what a fresh match would have produced.
//!
//! Fused sub-DDGs are not cached: their matchers re-derive the inner
//! map/reduction split from the `SubKind::Fused` payload (raw node
//! sets), which the group-level key does not see.
//!
//! **Bounded growth.** The table is a *size-capped sharded LRU*: a
//! long-lived engine (the `repro-serve` daemon, or a large batch) keeps
//! at most [`MatchCache::capacity`] entries, evicting the least recently
//! touched entry of the inserting shard. Recency is tracked lazily — a
//! touch appends a `(key, stamp)` pair to the shard's recency queue and
//! eviction skips stale pairs — so probes stay O(1) amortized. Evictions
//! and an approximate byte footprint are counted alongside hits and
//! misses; an evicted entry is recomputed (and re-inserted) on its next
//! miss, byte-identical to the first computation.
//!
//! Entry counts bound nothing when entries vary in size — a cache of
//! 4096 two-node chains and one of 4096 thousand-group views are orders
//! of magnitude apart — so the table optionally takes a second, *byte*
//! cap ([`MatchCache::capacity_bytes`]). Eviction honors whichever cap
//! trips first: the LRU loop keeps popping until the shard is under
//! both its entry and its byte budget. An entry bigger than a shard's
//! whole byte budget is evicted as soon as the next insert lands (it
//! can never fit), which only costs recomputation — never wrong data.

use ddg::{Ddg, NodeId, StructuralKey};
use discovery::models::MatchBudget;
use discovery::patterns::Detail;
use discovery::{Pattern, PatternKind, SubDdg, SubKind};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Dispatch classes of the non-fused sub-DDG kinds. The finder matches
/// loop-shaped views against map-then-linear and associative views
/// against linear-then-tiled, so views from different classes must never
/// share a cache line even when structurally equal.
fn dispatch_class(kind: &SubKind) -> Option<u64> {
    match kind {
        SubKind::Loop { .. } | SubKind::Derived { from_loop: Some(_) } => Some(0),
        SubKind::Assoc { .. } | SubKind::Derived { from_loop: None } => Some(1),
        SubKind::Fused { .. } => None,
    }
}

/// The compaction groups a key and a reconstruction see: the sub-DDG's
/// own groups, or singletons in ascending node order — exactly the view
/// `discovery::quotient::Quotient::build` compacts to.
fn groups_of(sub: &SubDdg) -> Vec<Vec<NodeId>> {
    match &sub.groups {
        Some(gs) => gs.clone(),
        None => sub.nodes.iter().map(|n| vec![NodeId(n as u32)]).collect(),
    }
}

#[derive(PartialEq, Eq, Hash)]
struct CacheKey {
    key: StructuralKey,
    budget_ms: u64,
}

/// A match outcome in group-index space.
enum CachedMatch {
    Map {
        kind: PatternKind,
        components: Vec<Vec<u32>>,
    },
    Linear {
        chain: Vec<u32>,
    },
    Tiled {
        partials: Vec<Vec<u32>>,
        final_chain: Vec<u32>,
    },
}

/// Result of a cache probe.
pub enum Probe {
    /// Fused sub-DDG (or the cache is disabled): match it directly.
    Uncacheable,
    /// Memoized outcome, rebuilt against the probing sub-DDG.
    Hit(Option<Pattern>),
    /// Unknown structure; match it, then [`MatchCache::fulfil`] the
    /// ticket with the outcome.
    Miss(PendingEntry),
}

/// A miss ticket carrying the computed key to the fulfil site.
pub struct PendingEntry {
    key: CacheKey,
}

/// Maximum shard count: enough to spread concurrent workers, small
/// enough that clearing one poisoned shard (or evicting from one) loses
/// little. Small capacities use fewer shards so the global bound is
/// exact (see [`MatchCache::with_capacity`]).
const SHARDS: usize = 16;

/// Default entry capacity when the caller does not size the cache
/// (the engine's `cache_capacity` config defaults to this): large
/// enough that a full starbench batch never evicts, small enough that a
/// resident daemon's footprint stays bounded.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Counter snapshot ([`MatchCache::metrics`]).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheMetrics {
    pub entries: usize,
    /// Entry capacity (0 = unbounded).
    pub capacity: usize,
    /// Byte capacity (0 = unbounded); eviction honors whichever of the
    /// entry and byte caps trips first.
    pub capacity_bytes: usize,
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped to keep the table under capacity.
    pub evictions: u64,
    /// Approximate resident footprint of keys + entries, in bytes.
    pub approx_bytes: u64,
    /// Poisoned shards recovered (cleared and reused). Each event is a
    /// shard's worth of memoized outcomes dropped, never wrong data
    /// served.
    pub poison_recoveries: u64,
}

/// One LRU-tracked slot.
struct Slot {
    entry: Option<CachedMatch>,
    /// Last-touch stamp; recency-queue pairs with an older stamp are
    /// stale and skipped at eviction time.
    stamp: u64,
    bytes: usize,
}

/// One shard: the memo map plus its lazy recency queue. All state that
/// eviction and poison recovery must keep coherent lives under one lock.
#[derive(Default)]
struct Shard {
    map: HashMap<Arc<CacheKey>, Slot>,
    /// `(key, stamp)` in touch order; an entry's *current* stamp lives
    /// in its [`Slot`], so only the newest pair per key is live.
    recency: VecDeque<(Arc<CacheKey>, u64)>,
    clock: u64,
    bytes: usize,
}

impl Shard {
    /// Records a touch of an existing slot.
    fn touch(&mut self, key: &CacheKey) {
        let Some((k, _)) = self.map.get_key_value(key) else {
            return;
        };
        let k = Arc::clone(k);
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).unwrap().stamp = clock;
        self.recency.push_back((k, clock));
    }

    /// Clears everything (poison recovery).
    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Inserts an entry, then evicts least-recently-touched entries
    /// until the shard is back under `cap` entries *and* `byte_cap`
    /// approximate bytes — whichever cap trips first keeps evicting.
    /// Returns evictions performed.
    fn insert(
        &mut self,
        key: CacheKey,
        entry: Option<CachedMatch>,
        cap: usize,
        byte_cap: usize,
    ) -> u64 {
        self.clock += 1;
        let bytes = approx_bytes(&key, &entry);
        let key = Arc::new(key);
        let old = self.map.insert(
            Arc::clone(&key),
            Slot {
                entry,
                stamp: self.clock,
                bytes,
            },
        );
        self.bytes += bytes;
        if let Some(old) = old {
            self.bytes -= old.bytes;
        }
        self.recency.push_back((key, self.clock));
        let mut evicted = 0;
        while (self.map.len() > cap || self.bytes > byte_cap) && !self.map.is_empty() {
            match self.recency.pop_front() {
                Some((k, stamp)) => {
                    // Live pair (stamp matches the slot's): evict. Stale
                    // pair (entry touched again later, or already gone):
                    // skip; its live pair is further back.
                    if self.map.get(&*k).is_some_and(|slot| slot.stamp == stamp) {
                        let slot = self.map.remove(&*k).unwrap();
                        self.bytes -= slot.bytes;
                        evicted += 1;
                    }
                }
                None => break, // unreachable: map entries all have pairs
            }
        }
        // Compact the lazy queue when stale pairs dominate, so repeated
        // touches of a hot entry cannot grow it without bound.
        if self.recency.len() > 4 * self.map.len() + 16 {
            let map = &self.map;
            self.recency
                .retain(|(k, stamp)| map.get(&**k).is_some_and(|slot| slot.stamp == *stamp));
        }
        evicted
    }
}

/// The shared, thread-safe memo table, sharded by key hash, each shard
/// an LRU bounded at `capacity / shard-count` entries.
pub struct MatchCache {
    enabled: bool,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound (`capacity == 0` means unbounded).
    shard_cap: usize,
    capacity: usize,
    /// Per-shard byte bound (`capacity_bytes == 0` means unbounded).
    shard_byte_cap: usize,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl MatchCache {
    /// A cache with the default capacity ([`DEFAULT_CACHE_CAPACITY`]).
    pub fn new(enabled: bool) -> MatchCache {
        MatchCache::with_capacity(enabled, DEFAULT_CACHE_CAPACITY)
    }

    /// A cache bounded at `capacity` entries (0 = unbounded). Capacities
    /// below the preferred shard count use one shard per entry so the
    /// global bound — and the eviction order — stays exact; a
    /// `capacity`-1 cache is a single deterministic LRU slot. Larger
    /// capacities split across [`SHARDS`] shards, each bounded at
    /// `capacity / SHARDS` (the effective total rounds down to a
    /// multiple of the shard count — never above `capacity`).
    pub fn with_capacity(enabled: bool, capacity: usize) -> MatchCache {
        MatchCache::with_capacities(enabled, capacity, 0)
    }

    /// A cache bounded at `capacity` entries *and* `capacity_bytes`
    /// approximate bytes (0 = unbounded, independently per cap). The
    /// byte budget splits evenly across shards, like the entry budget;
    /// eviction honors whichever shard-level cap trips first.
    pub fn with_capacities(enabled: bool, capacity: usize, capacity_bytes: usize) -> MatchCache {
        let shards = if capacity == 0 {
            SHARDS
        } else {
            SHARDS.min(capacity)
        };
        MatchCache::with_shards_and_bytes(enabled, capacity, capacity_bytes, shards)
    }

    /// Test-only constructor pinning the shard count so eviction order
    /// is deterministic.
    #[cfg(test)]
    fn with_shards(enabled: bool, capacity: usize, shards: usize) -> MatchCache {
        MatchCache::with_shards_and_bytes(enabled, capacity, 0, shards)
    }

    fn with_shards_and_bytes(
        enabled: bool,
        capacity: usize,
        capacity_bytes: usize,
        shards: usize,
    ) -> MatchCache {
        MatchCache {
            enabled,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: if capacity == 0 {
                usize::MAX
            } else {
                capacity / shards
            },
            capacity,
            shard_byte_cap: if capacity_bytes == 0 {
                usize::MAX
            } else {
                capacity_bytes / shards
            },
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Locks the shard holding `key`. A poisoned shard — a thread
    /// panicked mid-update, e.g. an injected model fault during
    /// `fulfil` — is *cleared* and recovered: a memo table may always
    /// drop entries (that only costs future hits), whereas serving a
    /// half-updated entry could break parity. Only the affected shard is
    /// touched — its siblings keep their entries — and the event is
    /// counted in [`CacheMetrics::poison_recoveries`]. The clear resets
    /// the shard's map, recency queue, and byte count together, so LRU
    /// bookkeeping stays coherent after recovery.
    fn shard_for(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let shard = &self.shards[(h.finish() as usize) % self.shards.len()];
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                shard.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Looks `sub`'s structural key up. A hit counts as a touch: the
    /// entry moves to the back of its shard's eviction order.
    pub fn probe(&self, g: &Ddg, sub: &SubDdg, budget: &MatchBudget) -> Probe {
        if !self.enabled {
            return Probe::Uncacheable;
        }
        let Some(class) = dispatch_class(&sub.kind) else {
            return Probe::Uncacheable;
        };
        let groups = groups_of(sub);
        let key = CacheKey {
            key: ddg::grouped_key(g, &groups, class),
            budget_ms: budget.time.as_millis() as u64,
        };
        let cached = {
            let mut shard = self.shard_for(&key);
            let found = shard
                .map
                .get(&key)
                .map(|slot| slot.entry.as_ref().map(rebuild_args));
            if found.is_some() {
                shard.touch(&key);
            }
            found
        };
        match cached {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Probe::Hit(entry.map(|args| rebuild(g, sub, &groups, args)))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Probe::Miss(PendingEntry { key })
            }
        }
    }

    /// Stores the outcome of a missed probe, evicting the shard's least
    /// recently used entries if it runs over capacity. `sub` must be the
    /// sub-DDG the probe ran on.
    pub fn fulfil(&self, pending: PendingEntry, sub: &SubDdg, outcome: &Option<Pattern>) {
        let entry = match outcome {
            None => Some(None),
            Some(p) => encode(sub, p).map(Some),
        };
        // An unencodable pattern (a detail node outside the group view;
        // never produced by the current models) is simply not cached.
        if let Some(entry) = entry {
            let (cap, byte_cap) = (self.shard_cap, self.shard_byte_cap);
            let evicted = self
                .shard_for(&pending.key)
                .insert(pending.key, entry, cap, byte_cap);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                obs::counter("cache.evictions").add(evicted);
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entry capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Byte capacity (0 = unbounded).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Approximate resident bytes across shards (keys + entries).
    pub fn approx_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes as u64
            })
            .sum()
    }

    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            entries: self.entries(),
            capacity: self.capacity,
            capacity_bytes: self.capacity_bytes,
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            approx_bytes: self.approx_bytes(),
            poison_recoveries: self.poison_recoveries(),
        }
    }
}

/// Approximate heap footprint of one cache line: key words, entry
/// vectors, and fixed per-slot overhead (map + recency bookkeeping).
fn approx_bytes(key: &CacheKey, entry: &Option<CachedMatch>) -> usize {
    let entry_bytes = match entry {
        None => 0,
        Some(CachedMatch::Map { components, .. }) => {
            components.iter().map(|c| 24 + 4 * c.len()).sum::<usize>()
        }
        Some(CachedMatch::Linear { chain }) => 4 * chain.len(),
        Some(CachedMatch::Tiled {
            partials,
            final_chain,
        }) => partials.iter().map(|c| 24 + 4 * c.len()).sum::<usize>() + 4 * final_chain.len(),
    };
    8 * key.key.len_words() + entry_bytes + 96
}

/// Owned arguments for [`rebuild`], cloned out of the table so the lock
/// is not held while patterns are being reconstructed.
enum RebuildArgs {
    Map {
        kind: PatternKind,
        components: Vec<Vec<u32>>,
    },
    Linear {
        chain: Vec<u32>,
    },
    Tiled {
        partials: Vec<Vec<u32>>,
        final_chain: Vec<u32>,
    },
}

fn rebuild_args(m: &CachedMatch) -> RebuildArgs {
    match m {
        CachedMatch::Map { kind, components } => RebuildArgs::Map {
            kind: *kind,
            components: components.clone(),
        },
        CachedMatch::Linear { chain } => RebuildArgs::Linear {
            chain: chain.clone(),
        },
        CachedMatch::Tiled {
            partials,
            final_chain,
        } => RebuildArgs::Tiled {
            partials: partials.clone(),
            final_chain: final_chain.clone(),
        },
    }
}

/// Encodes a freshly matched pattern in group-index space. Every node a
/// detail references is mapped to its `(group, member)` position; chains
/// always reference group representatives (`members[0]`) and map
/// components cover whole groups, so group indices suffice.
fn encode(sub: &SubDdg, p: &Pattern) -> Option<CachedMatch> {
    let groups = groups_of(sub);
    let mut group_of: HashMap<u32, u32> = HashMap::new();
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            group_of.insert(m.0, gi as u32);
        }
    }
    let map_chain = |chain: &[NodeId]| -> Option<Vec<u32>> {
        chain.iter().map(|n| group_of.get(&n.0).copied()).collect()
    };
    match &p.detail {
        // The cached dispatch classes always attach detail; a detail-less
        // pattern has no group-space encoding, so it is not cached.
        Detail::None => None,
        Detail::Map { components } => {
            // Members of one group are contiguous in a component; keep
            // each group index once, in order.
            let mut comps = Vec::with_capacity(components.len());
            for c in components {
                let mut gis: Vec<u32> = Vec::new();
                for n in c {
                    let gi = *group_of.get(&n.0)?;
                    if gis.last() != Some(&gi) {
                        gis.push(gi);
                    }
                }
                comps.push(gis);
            }
            Some(CachedMatch::Map {
                kind: p.kind,
                components: comps,
            })
        }
        Detail::Linear { chain } => Some(CachedMatch::Linear {
            chain: map_chain(chain)?,
        }),
        Detail::Tiled {
            partials,
            final_chain,
        } => Some(CachedMatch::Tiled {
            partials: partials
                .iter()
                .map(|c| map_chain(c))
                .collect::<Option<Vec<_>>>()?,
            final_chain: map_chain(final_chain)?,
        }),
    }
}

/// Rebuilds a concrete pattern for `sub` from a group-index match. The
/// probing view's key equals the stored view's key, so group count and
/// per-group member counts agree and every index resolves.
fn rebuild(g: &Ddg, sub: &SubDdg, groups: &[Vec<NodeId>], args: RebuildArgs) -> Pattern {
    let rep = |gi: &u32| groups[*gi as usize][0];
    match args {
        RebuildArgs::Map { kind, components } => {
            let components: Vec<Vec<NodeId>> = components
                .iter()
                .map(|gis| {
                    gis.iter()
                        .flat_map(|gi| groups[*gi as usize].iter().copied())
                        .collect()
                })
                .collect();
            let n = components.len();
            Pattern::with_metadata(kind, sub.nodes.clone(), n, g)
                .with_detail(Detail::Map { components })
        }
        RebuildArgs::Linear { chain } => {
            let n = chain.len();
            Pattern::with_metadata(PatternKind::LinearReduction, sub.nodes.clone(), n, g)
                .with_detail(Detail::Linear {
                    chain: chain.iter().map(rep).collect(),
                })
        }
        RebuildArgs::Tiled {
            partials,
            final_chain,
        } => {
            let n = groups.len();
            Pattern::with_metadata(PatternKind::TiledReduction, sub.nodes.clone(), n, g)
                .with_detail(Detail::Tiled {
                    partials: partials
                        .iter()
                        .map(|c| c.iter().map(rep).collect())
                        .collect(),
                    final_chain: final_chain.iter().map(rep).collect(),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddg::{BitSet, DdgBuilder};
    use discovery::models::match_subddg;

    /// A chain of `n` adds with distinguishable static ops per position,
    /// fed from outside, last writing output — a linear reduction.
    fn chain(n: usize, op_base: u32, label: &str) -> (Ddg, SubDdg) {
        let mut b = DdgBuilder::new();
        let l = b.intern_label(label, true);
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(l, op_base, 0, 1, 1, 0, vec![]))
            .collect();
        for i in 0..n {
            b.mark_reads_input(nodes[i]);
            if i > 0 {
                b.add_arc(nodes[i - 1], nodes[i]);
            }
        }
        b.mark_writes_output(nodes[n - 1]);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..n),
            SubKind::Assoc {
                label: label.into(),
            },
        );
        (g, sub)
    }

    fn probe_of(cache: &MatchCache, g: &Ddg, sub: &SubDdg) -> Probe {
        cache.probe(g, sub, &MatchBudget::default())
    }

    #[test]
    fn hit_rebuilds_byte_identical_pattern() {
        let cache = MatchCache::new(true);
        let (g1, sub1) = chain(4, 0, "fadd");
        let Probe::Miss(pending) = probe_of(&cache, &g1, &sub1) else {
            panic!("first probe must miss")
        };
        let fresh = match_subddg(&g1, &sub1, &MatchBudget::default());
        assert!(fresh.is_some());
        cache.fulfil(pending, &sub1, &fresh);

        // An op-isomorphic view (different static op ids) from a second
        // graph: must hit and rebuild exactly what a fresh match yields.
        let (g2, sub2) = chain(4, 77, "fadd");
        let Probe::Hit(Some(rebuilt)) = probe_of(&cache, &g2, &sub2) else {
            panic!("isomorphic view must hit")
        };
        let direct = match_subddg(&g2, &sub2, &MatchBudget::default()).unwrap();
        assert_eq!(rebuilt.kind, direct.kind);
        assert_eq!(rebuilt.components, direct.components);
        assert_eq!(rebuilt.op_labels, direct.op_labels);
        assert_eq!(rebuilt.lines, direct.lines);
        assert_eq!(rebuilt.detail, direct.detail);
        assert_eq!(
            rebuilt.nodes.iter().collect::<Vec<_>>(),
            direct.nodes.iter().collect::<Vec<_>>()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn negative_outcomes_are_cached_too() {
        let cache = MatchCache::new(true);
        // A chain with no final output never matches.
        let mut b = DdgBuilder::new();
        let l = b.intern_label("fadd", true);
        let x = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        let y = b.add_node(l, 0, 0, 1, 1, 0, vec![]);
        b.mark_reads_input(x);
        b.mark_reads_input(y);
        b.add_arc(x, y);
        let g = b.finish();
        let sub = SubDdg::ungrouped(
            BitSet::from_iter(g.len(), 0..2),
            SubKind::Assoc {
                label: "fadd".into(),
            },
        );
        let Probe::Miss(pending) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        let outcome = match_subddg(&g, &sub, &MatchBudget::default());
        assert!(outcome.is_none());
        cache.fulfil(pending, &sub, &outcome);
        let Probe::Hit(None) = probe_of(&cache, &g, &sub) else {
            panic!("negative outcome must hit")
        };
    }

    #[test]
    fn different_labels_do_not_collide() {
        let cache = MatchCache::new(true);
        let (g1, sub1) = chain(3, 0, "fadd");
        let Probe::Miss(p1) = probe_of(&cache, &g1, &sub1) else {
            panic!()
        };
        cache.fulfil(
            p1,
            &sub1,
            &match_subddg(&g1, &sub1, &MatchBudget::default()),
        );
        let (g2, sub2) = chain(3, 0, "fmul");
        assert!(
            matches!(probe_of(&cache, &g2, &sub2), Probe::Miss(_)),
            "a different operation label is a different structure"
        );
    }

    #[test]
    fn fused_views_are_uncacheable() {
        let (g, sub) = chain(4, 0, "fadd");
        let fused = SubDdg {
            nodes: sub.nodes.clone(),
            groups: None,
            kind: SubKind::Fused {
                map_part: sub.nodes.clone(),
                other_part: sub.nodes.clone(),
                other_kind: PatternKind::Map,
            },
        };
        let cache = MatchCache::new(true);
        assert!(matches!(probe_of(&cache, &g, &fused), Probe::Uncacheable));
    }

    #[test]
    fn disabled_cache_never_engages() {
        let cache = MatchCache::new(false);
        let (g, sub) = chain(4, 0, "fadd");
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Uncacheable));
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn poisoned_shards_are_cleared_and_recovered() {
        let cache = MatchCache::new(true);
        let (g, sub) = chain(4, 0, "fadd");
        let Probe::Miss(p) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        cache.fulfil(p, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert_eq!(cache.entries(), 1);

        // Panic while holding every shard lock: all shards poisoned.
        for shard in &cache.shards {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("die holding the cache lock");
            }));
            assert!(caught.is_err());
        }

        // The next probe recovers its shard (cleared, so it misses) and
        // the cache keeps working: fulfil + re-probe hits again.
        let Probe::Miss(p) = probe_of(&cache, &g, &sub) else {
            panic!("cleared shard must miss")
        };
        assert!(cache.poison_recoveries() >= 1);
        cache.fulfil(p, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Hit(Some(_))));
        let m = cache.metrics();
        assert_eq!(m.poison_recoveries, cache.poison_recoveries());
        assert!(m.hits >= 1);
    }

    /// Runs the miss → match → fulfil cycle, asserting the probe missed.
    fn miss_and_fill(cache: &MatchCache, g: &Ddg, sub: &SubDdg) {
        let Probe::Miss(p) = probe_of(cache, g, sub) else {
            panic!("expected a miss")
        };
        cache.fulfil(p, sub, &match_subddg(g, sub, &MatchBudget::default()));
    }

    #[test]
    fn capacity_one_cache_evicts_deterministically() {
        let cache = MatchCache::with_capacity(true, 1);
        assert_eq!(cache.capacity(), 1);
        let (g1, sub1) = chain(3, 0, "fadd");
        let (g2, sub2) = chain(4, 0, "fadd"); // different length → different key
        miss_and_fill(&cache, &g1, &sub1);
        assert_eq!(cache.entries(), 1);
        assert!(cache.approx_bytes() > 0);
        assert!(matches!(probe_of(&cache, &g1, &sub1), Probe::Hit(Some(_))));

        // Inserting the second shape evicts the first — the table never
        // exceeds one entry.
        miss_and_fill(&cache, &g2, &sub2);
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(
            matches!(probe_of(&cache, &g1, &sub1), Probe::Miss(_)),
            "evicted shape must miss"
        );
        assert!(
            matches!(probe_of(&cache, &g2, &sub2), Probe::Hit(Some(_))),
            "resident shape must hit"
        );
    }

    #[test]
    fn evicted_entries_recompute_byte_identical_results() {
        let cache = MatchCache::with_capacity(true, 1);
        let (g1, sub1) = chain(3, 0, "fadd");
        let (g2, sub2) = chain(4, 0, "fadd");
        let first = match_subddg(&g1, &sub1, &MatchBudget::default()).unwrap();
        miss_and_fill(&cache, &g1, &sub1);
        miss_and_fill(&cache, &g2, &sub2); // evicts sub1's entry

        // Recompute after eviction, refill, and re-probe: every round
        // trip reproduces the original pattern exactly.
        let Probe::Miss(p) = probe_of(&cache, &g1, &sub1) else {
            panic!("evicted entry must miss")
        };
        let again = match_subddg(&g1, &sub1, &MatchBudget::default()).unwrap();
        assert_eq!(again.kind, first.kind);
        assert_eq!(again.detail, first.detail);
        assert_eq!(again.lines, first.lines);
        cache.fulfil(p, &sub1, &Some(again));
        let Probe::Hit(Some(rebuilt)) = probe_of(&cache, &g1, &sub1) else {
            panic!("refilled entry must hit")
        };
        assert_eq!(rebuilt.kind, first.kind);
        assert_eq!(rebuilt.detail, first.detail);
        assert_eq!(rebuilt.lines, first.lines);
    }

    #[test]
    fn hits_refresh_recency_so_the_cold_entry_evicts() {
        // Single shard, three slots: A, B, C resident, A touched, D
        // inserted → B (the least recently touched) evicts.
        let cache = MatchCache::with_shards(true, 3, 1);
        let shapes: Vec<_> = (2..6).map(|n| chain(n, 0, "fadd")).collect();
        let (a, b, c, d) = (&shapes[0], &shapes[1], &shapes[2], &shapes[3]);
        miss_and_fill(&cache, &a.0, &a.1);
        miss_and_fill(&cache, &b.0, &b.1);
        miss_and_fill(&cache, &c.0, &c.1);
        assert!(matches!(probe_of(&cache, &a.0, &a.1), Probe::Hit(_)));
        miss_and_fill(&cache, &d.0, &d.1);
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(matches!(probe_of(&cache, &a.0, &a.1), Probe::Hit(_)));
        assert!(
            matches!(probe_of(&cache, &b.0, &b.1), Probe::Miss(_)),
            "B was the least recently used entry"
        );
        assert!(matches!(probe_of(&cache, &c.0, &c.1), Probe::Hit(_)));
        assert!(matches!(probe_of(&cache, &d.0, &d.1), Probe::Hit(_)));
    }

    #[test]
    fn repeated_hits_do_not_grow_the_recency_queue_without_bound() {
        let cache = MatchCache::with_shards(true, 2, 1);
        let (g1, sub1) = chain(3, 0, "fadd");
        let (g2, sub2) = chain(4, 0, "fadd");
        miss_and_fill(&cache, &g1, &sub1);
        for _ in 0..1000 {
            assert!(matches!(probe_of(&cache, &g1, &sub1), Probe::Hit(_)));
        }
        // The lazy queue compacts on insert; after one more fill it must
        // be proportional to the live entry count, not the touch count.
        miss_and_fill(&cache, &g2, &sub2);
        let queue_len = cache.shards[0].lock().unwrap().recency.len();
        assert!(queue_len <= 4 * 2 + 16, "queue grew to {queue_len}");
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn unbounded_capacity_never_evicts() {
        let cache = MatchCache::with_capacity(true, 0);
        assert_eq!(cache.capacity(), 0);
        for n in 2..40 {
            let (g, sub) = chain(n, 0, "fadd");
            miss_and_fill(&cache, &g, &sub);
        }
        assert_eq!(cache.entries(), 38);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn bytes_accounting_tracks_insert_and_evict() {
        let cache = MatchCache::with_shards(true, 1, 1);
        let (g1, sub1) = chain(3, 0, "fadd");
        let (g2, sub2) = chain(9, 0, "fadd");
        miss_and_fill(&cache, &g1, &sub1);
        let small = cache.approx_bytes();
        assert!(small > 0);
        miss_and_fill(&cache, &g2, &sub2); // evicts the small entry
        let big = cache.approx_bytes();
        assert!(big > small, "a 9-node chain outweighs a 3-node chain");
        let m = cache.metrics();
        assert_eq!(m.entries, 1);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.approx_bytes, big);
        assert_eq!(m.capacity, 1);
    }

    /// Approximate footprint of one cached `chain(n, ..)` entry,
    /// measured through an unbounded single-shard cache.
    fn unit_bytes(n: usize) -> usize {
        let cache = MatchCache::with_shards(true, 0, 1);
        let (g, sub) = chain(n, 0, "fadd");
        miss_and_fill(&cache, &g, &sub);
        cache.approx_bytes() as usize
    }

    #[test]
    fn byte_cap_alone_bounds_the_footprint() {
        // Entry cap unbounded; byte budget fits two same-shape entries.
        // (Same chain length, same label length → same key size.)
        let unit = unit_bytes(3);
        let cache = MatchCache::with_shards_and_bytes(true, 0, 2 * unit, 1);
        assert_eq!(cache.capacity(), 0);
        assert_eq!(cache.capacity_bytes(), 2 * unit);
        for label in ["fadd", "fmul", "fsub"] {
            let (g, sub) = chain(3, 0, label);
            miss_and_fill(&cache, &g, &sub);
        }
        assert_eq!(cache.entries(), 2, "third insert must evict by bytes");
        assert_eq!(cache.evictions(), 1);
        assert!(cache.approx_bytes() as usize <= 2 * unit);
        // LRU order: the first-inserted shape is the one gone.
        let (g, sub) = chain(3, 0, "fadd");
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Miss(_)));
        let (g, sub) = chain(3, 0, "fsub");
        assert!(matches!(probe_of(&cache, &g, &sub), Probe::Hit(_)));
        let m = cache.metrics();
        assert_eq!(m.capacity_bytes, 2 * unit);
        assert_eq!(m.entries, 2);
    }

    #[test]
    fn whichever_cap_trips_first_wins() {
        // Byte budget generous, entry cap of 1: entries evict first.
        let unit = unit_bytes(3);
        let by_entries = MatchCache::with_shards_and_bytes(true, 1, 100 * unit, 1);
        let (g1, sub1) = chain(3, 0, "fadd");
        let (g2, sub2) = chain(3, 0, "fmul");
        miss_and_fill(&by_entries, &g1, &sub1);
        miss_and_fill(&by_entries, &g2, &sub2);
        assert_eq!(by_entries.entries(), 1);
        assert_eq!(by_entries.evictions(), 1);

        // Entry cap generous, byte budget of one entry: bytes evict
        // first, holding entries below the entry cap.
        let by_bytes = MatchCache::with_shards_and_bytes(true, 100, unit, 1);
        miss_and_fill(&by_bytes, &g1, &sub1);
        miss_and_fill(&by_bytes, &g2, &sub2);
        assert_eq!(by_bytes.entries(), 1);
        assert_eq!(by_bytes.evictions(), 1);
        assert!(by_bytes.approx_bytes() as usize <= unit);
    }

    #[test]
    fn entry_larger_than_the_byte_budget_is_not_retained() {
        // A budget smaller than any single entry: the table caches
        // nothing, but every probe/fulfil cycle still works (the match
        // is simply recomputed each time).
        let cache = MatchCache::with_shards_and_bytes(true, 0, 8, 1);
        let (g, sub) = chain(4, 0, "fadd");
        miss_and_fill(&cache, &g, &sub);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.approx_bytes(), 0);
        let Probe::Miss(p) = probe_of(&cache, &g, &sub) else {
            panic!("oversized entry must not be resident")
        };
        cache.fulfil(p, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn loop_and_assoc_views_of_one_shape_do_not_collide() {
        let (g, sub) = chain(4, 0, "fadd");
        let as_loop = SubDdg::grouped(
            sub.nodes.clone(),
            (0..4).map(|i| vec![NodeId(i)]).collect(),
            SubKind::Loop { loop_id: 0 },
        );
        let cache = MatchCache::new(true);
        let Probe::Miss(p1) = probe_of(&cache, &g, &sub) else {
            panic!()
        };
        cache.fulfil(p1, &sub, &match_subddg(&g, &sub, &MatchBudget::default()));
        assert!(
            matches!(probe_of(&cache, &g, &as_loop), Probe::Miss(_)),
            "different dispatch class must miss"
        );
    }
}
