//! Persistent on-disk cache for the trace, exec, and find stages.
//!
//! A restarted daemon should be warm: the expensive artifacts (traced
//! run summaries and complete finder results) are written as
//! *versioned append-only segments* on clean shutdown and loaded on
//! start. The in-memory sub-DDG and match stages are rebuilt on demand
//! — they are cheap relative to tracing and their entries are large.
//!
//! ## Segment format
//!
//! ```text
//! header:  magic "RQSEG\n" (6 bytes) | CACHE_SCHEMA_VERSION (u32 LE)
//! record:  stage (u8) | key (u128 LE) | len (u32 LE) | payload | fnv64(stage‖key‖payload) (u64 LE)
//! ```
//!
//! Loading is *tolerant by construction*: a segment with the wrong
//! magic or version is skipped and counted (never an error — an old
//! daemon's cache is simply cold); a record whose checksum fails is
//! dropped and counted; a record whose framing runs past the end of
//! the file (truncation, torn write) ends that segment. A corrupt
//! cache can cost recomputation, never wrong data and never a crash.

use crate::artifact::{ExecEntry, FindArtifact, TraceArtifact};
use crate::QueryDb;
use ddg::{BitSet, NodeId};
use discovery::patterns::{Detail, Found, Pattern, PatternKind};
use discovery::SimplifyStats;
use repro_ir::{ContentHash, Value};
use std::io;
use std::path::Path;

/// Bumped whenever the segment or payload encoding changes; a mismatch
/// makes old segments invisible (counted, not fatal).
pub const CACHE_SCHEMA_VERSION: u32 = 1;

const MAGIC: &[u8; 6] = b"RQSEG\n";
const STAGE_TRACE: u8 = 1;
const STAGE_FIND: u8 = 2;
const STAGE_EXEC: u8 = 3;

/// What loading a cache directory found.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct LoadReport {
    /// Segment files read to the end.
    pub segments_loaded: usize,
    /// Records admitted into the DB.
    pub records_loaded: usize,
    /// Segment files skipped for a magic/version mismatch.
    pub version_mismatches: usize,
    /// Records dropped (checksum failure, undecodable payload, or a
    /// truncated tail).
    pub corrupt_records: usize,
    /// Segment files that ended early or failed to read.
    pub corrupt_segments: usize,
}

/// What a save wrote.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaveReport {
    pub trace_records: usize,
    pub find_records: usize,
    pub exec_records: usize,
}

/// Serializes the persistable stages into fresh segments under `dir`
/// (created if needed). Existing segments are replaced — written to a
/// temporary file first, renamed into place, so a crash mid-save
/// leaves either the old cache or the new one, never a torn file.
pub fn save_dir(db: &QueryDb, dir: &Path) -> io::Result<SaveReport> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_SCHEMA_VERSION.to_le_bytes());
    let mut report = SaveReport::default();
    for (key, artifact) in db.export_trace() {
        write_record(&mut out, STAGE_TRACE, key, &encode_trace(&artifact));
        report.trace_records += 1;
    }
    for (key, artifact) in db.export_find() {
        write_record(&mut out, STAGE_FIND, key, &encode_find(&artifact));
        report.find_records += 1;
    }
    for (key, entry) in db.export_exec() {
        write_record(&mut out, STAGE_EXEC, key, &encode_exec(&entry));
        report.exec_records += 1;
    }
    let tmp = dir.join("segment-000.seg.tmp");
    let dst = dir.join("segment-000.seg");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, &dst)?;
    // Stale segments from older layouts (if any) are dropped so the
    // directory always reflects exactly the state at shutdown.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path != dst && path.extension().is_some_and(|e| e == "seg") {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    Ok(report)
}

/// Loads every segment under `dir` into the DB. Missing directory is
/// an empty (cold) cache, not an error.
pub fn load_dir(db: &QueryDb, dir: &Path) -> LoadReport {
    let mut report = LoadReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return report,
    };
    let mut paths: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    paths.sort();
    for path in paths {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                report.corrupt_segments += 1;
                continue;
            }
        };
        load_segment(db, &bytes, &mut report);
    }
    report
}

fn load_segment(db: &QueryDb, bytes: &[u8], report: &mut LoadReport) {
    let mut d = Dec::new(bytes);
    let ok_header = d.take(6).map(|m| m == MAGIC).unwrap_or(false)
        && d.u32().map(|v| v == CACHE_SCHEMA_VERSION).unwrap_or(false);
    if !ok_header {
        report.version_mismatches += 1;
        return;
    }
    let mut clean = true;
    while !d.at_end() {
        let Some((stage, key, payload)) = read_record(&mut d) else {
            // Truncated or torn framing: the rest of this segment is
            // unreadable. Count the partial record and stop.
            report.corrupt_records += 1;
            clean = false;
            break;
        };
        let Some(payload) = payload else {
            // Framing intact but the checksum failed (e.g. a bit flip):
            // drop this record, keep reading the rest.
            report.corrupt_records += 1;
            continue;
        };
        let admitted = match stage {
            STAGE_TRACE => decode_trace(&mut Dec::new(payload))
                .map(|a| db.trace_put(key, a))
                .is_some(),
            STAGE_FIND => decode_find(&mut Dec::new(payload))
                .map(|a| db.find_put(key, a))
                .is_some(),
            STAGE_EXEC => decode_exec(&mut Dec::new(payload))
                .map(|e| db.exec_put(key, e))
                .is_some(),
            _ => false,
        };
        if admitted {
            report.records_loaded += 1;
        } else {
            report.corrupt_records += 1;
        }
    }
    if clean {
        report.segments_loaded += 1;
    } else {
        report.corrupt_segments += 1;
    }
}

fn write_record(out: &mut Vec<u8>, stage: u8, key: ContentHash, payload: &[u8]) {
    out.push(stage);
    out.extend_from_slice(&key.0.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&record_checksum(stage, key, payload).to_le_bytes());
}

/// Reads one record. `None` = framing failure (stop the segment);
/// `Some((_, _, None))` = checksum mismatch (skip the record).
fn read_record<'a>(d: &mut Dec<'a>) -> Option<(u8, ContentHash, Option<&'a [u8]>)> {
    let stage = d.u8()?;
    let key = ContentHash(u128::from_le_bytes(d.take(16)?.try_into().ok()?));
    let len = d.u32()? as usize;
    let payload = d.take(len)?;
    let checksum = d.u64()?;
    if checksum == record_checksum(stage, key, payload) {
        Some((stage, key, Some(payload)))
    } else {
        Some((stage, key, None))
    }
}

fn record_checksum(stage: u8, key: ContentHash, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    eat(stage);
    for b in key.0.to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

// ---- byte-level encoder/decoder ----

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::I64(x) => {
                self.u8(1);
                self.u64(*x as u64);
            }
            Value::F64(x) => {
                self.u8(2);
                self.f64(*x);
            }
            Value::Bool(x) => {
                self.u8(3);
                self.u8(*x as u8);
            }
        }
    }
}

/// Bounds-checked reader; every accessor returns `None` past the end,
/// so corrupt input can only ever produce a dropped record.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().unwrap()))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            1 => Some(Value::I64(self.u64()? as i64)),
            2 => Some(Value::F64(self.f64()?)),
            3 => Some(Value::Bool(self.u8()? != 0)),
            _ => None,
        }
    }
}

// ---- trace artifact codec ----

fn encode_trace(a: &TraceArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    e.u128(a.ddg_fp.0);
    e.u64(a.ddg_nodes);
    e.u64(a.steps);
    match &a.return_value {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            e.value(v);
        }
    }
    e.u32(a.arrays.len() as u32);
    for (name, values) in &a.arrays {
        e.str(name);
        e.u32(values.len() as u32);
        for v in values {
            e.value(v);
        }
    }
    e.buf
}

fn decode_trace(d: &mut Dec) -> Option<TraceArtifact> {
    let ddg_fp = ContentHash(d.u128()?);
    let ddg_nodes = d.u64()?;
    let steps = d.u64()?;
    let return_value = match d.u8()? {
        0 => None,
        1 => Some(d.value()?),
        _ => return None,
    };
    let n_arrays = d.u32()? as usize;
    let mut arrays = Vec::with_capacity(n_arrays.min(1024));
    for _ in 0..n_arrays {
        let name = d.str()?;
        let len = d.u32()? as usize;
        let mut values = Vec::with_capacity(len.min(65536));
        for _ in 0..len {
            values.push(d.value()?);
        }
        arrays.push((name, values));
    }
    Some(TraceArtifact {
        ddg_fp,
        ddg_nodes,
        steps,
        return_value,
        arrays,
    })
}

// ---- exec entry codec ----

fn encode_exec(e: &ExecEntry) -> Vec<u8> {
    let mut enc = Enc::default();
    enc.u128(e.ddg_fp.0);
    enc.u64(e.ddg_nodes);
    enc.buf
}

fn decode_exec(d: &mut Dec) -> Option<ExecEntry> {
    Some(ExecEntry {
        ddg_fp: ContentHash(d.u128()?),
        ddg_nodes: d.u64()?,
    })
}

// ---- find artifact codec ----

fn kind_tag(k: PatternKind) -> u8 {
    match k {
        PatternKind::Map => 0,
        PatternKind::ConditionalMap => 1,
        PatternKind::FusedMap => 2,
        PatternKind::LinearReduction => 3,
        PatternKind::TiledReduction => 4,
        PatternKind::LinearMapReduction => 5,
        PatternKind::TiledMapReduction => 6,
    }
}

fn tag_kind(t: u8) -> Option<PatternKind> {
    Some(match t {
        0 => PatternKind::Map,
        1 => PatternKind::ConditionalMap,
        2 => PatternKind::FusedMap,
        3 => PatternKind::LinearReduction,
        4 => PatternKind::TiledReduction,
        5 => PatternKind::LinearMapReduction,
        6 => PatternKind::TiledMapReduction,
        _ => return None,
    })
}

fn encode_chain(e: &mut Enc, chain: &[NodeId]) {
    e.u32(chain.len() as u32);
    for n in chain {
        e.u32(n.0);
    }
}

fn decode_chain(d: &mut Dec) -> Option<Vec<NodeId>> {
    let len = d.u32()? as usize;
    let mut chain = Vec::with_capacity(len.min(65536));
    for _ in 0..len {
        chain.push(NodeId(d.u32()?));
    }
    Some(chain)
}

fn encode_find(a: &FindArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(a.ddg_size);
    e.u64(a.simplified_size);
    e.u64(a.simplify_stats.nodes_before as u64);
    e.u64(a.simplify_stats.nodes_after as u64);
    e.u64(a.simplify_stats.iterator_removed as u64);
    e.u64(a.simplify_stats.address_removed as u64);
    e.u64(a.iterations);
    e.u64(a.subddgs_matched);
    e.u32(a.found.len() as u32);
    for f in &a.found {
        let p = &f.pattern;
        e.u64(f.iteration as u64);
        e.u8(f.reported as u8);
        e.u8(kind_tag(p.kind));
        e.u64(p.nodes.capacity() as u64);
        let members: Vec<usize> = p.nodes.iter().collect();
        e.u32(members.len() as u32);
        for m in members {
            e.u32(m as u32);
        }
        e.u64(p.components as u64);
        e.u32(p.op_labels.len() as u32);
        for l in &p.op_labels {
            e.str(l);
        }
        e.u32(p.lines.len() as u32);
        for (file, line) in &p.lines {
            e.u32(*file as u32);
            e.u32(*line);
        }
        e.u32(p.loops.len() as u32);
        for l in &p.loops {
            e.u32(*l);
        }
        match &p.detail {
            Detail::None => e.u8(0),
            Detail::Map { components } => {
                e.u8(1);
                e.u32(components.len() as u32);
                for c in components {
                    encode_chain(&mut e, c);
                }
            }
            Detail::Linear { chain } => {
                e.u8(2);
                encode_chain(&mut e, chain);
            }
            Detail::Tiled {
                partials,
                final_chain,
            } => {
                e.u8(3);
                e.u32(partials.len() as u32);
                for c in partials {
                    encode_chain(&mut e, c);
                }
                encode_chain(&mut e, final_chain);
            }
        }
    }
    e.buf
}

fn decode_find(d: &mut Dec) -> Option<FindArtifact> {
    let ddg_size = d.u64()?;
    let simplified_size = d.u64()?;
    let simplify_stats = SimplifyStats {
        nodes_before: d.u64()? as usize,
        nodes_after: d.u64()? as usize,
        iterator_removed: d.u64()? as usize,
        address_removed: d.u64()? as usize,
    };
    let iterations = d.u64()?;
    let subddgs_matched = d.u64()?;
    let n_found = d.u32()? as usize;
    let mut found = Vec::with_capacity(n_found.min(4096));
    for _ in 0..n_found {
        let iteration = d.u64()? as usize;
        let reported = d.u8()? != 0;
        let kind = tag_kind(d.u8()?)?;
        let capacity = d.u64()? as usize;
        if capacity > (1 << 32) {
            return None;
        }
        let n_members = d.u32()? as usize;
        let mut members = Vec::with_capacity(n_members.min(65536));
        for _ in 0..n_members {
            let m = d.u32()? as usize;
            if m >= capacity {
                return None;
            }
            members.push(m);
        }
        let nodes = BitSet::from_iter(capacity, members);
        let components = d.u64()? as usize;
        let n_labels = d.u32()? as usize;
        let mut op_labels = Vec::with_capacity(n_labels.min(1024));
        for _ in 0..n_labels {
            op_labels.push(d.str()?);
        }
        let n_lines = d.u32()? as usize;
        let mut lines = Vec::with_capacity(n_lines.min(65536));
        for _ in 0..n_lines {
            let file = d.u32()?;
            if file > u16::MAX as u32 {
                return None;
            }
            lines.push((file as u16, d.u32()?));
        }
        let n_loops = d.u32()? as usize;
        let mut loops = Vec::with_capacity(n_loops.min(65536));
        for _ in 0..n_loops {
            loops.push(d.u32()?);
        }
        let detail = match d.u8()? {
            0 => Detail::None,
            1 => {
                let n = d.u32()? as usize;
                let mut comps = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    comps.push(decode_chain(d)?);
                }
                Detail::Map { components: comps }
            }
            2 => Detail::Linear {
                chain: decode_chain(d)?,
            },
            3 => {
                let n = d.u32()? as usize;
                let mut partials = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    partials.push(decode_chain(d)?);
                }
                Detail::Tiled {
                    partials,
                    final_chain: decode_chain(d)?,
                }
            }
            _ => return None,
        };
        found.push(Found {
            pattern: Pattern {
                kind,
                nodes,
                components,
                op_labels,
                lines,
                loops,
                detail,
            },
            iteration,
            reported,
        });
    }
    Some(FindArtifact {
        found,
        ddg_size,
        simplified_size,
        simplify_stats,
        iterations,
        subddgs_matched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryConfig, QueryDb};
    use repro_ir::fingerprint_str;

    fn sample_trace() -> TraceArtifact {
        TraceArtifact {
            ddg_fp: fingerprint_str("ddg"),
            ddg_nodes: 1234,
            steps: 99,
            return_value: Some(Value::F64(-0.5)),
            arrays: vec![
                ("a".into(), vec![Value::I64(-7), Value::Bool(true)]),
                ("b".into(), vec![Value::F64(2.5)]),
            ],
        }
    }

    fn sample_find() -> FindArtifact {
        FindArtifact {
            found: vec![Found {
                pattern: Pattern {
                    kind: PatternKind::TiledReduction,
                    nodes: BitSet::from_iter(100, [3, 17, 64]),
                    components: 3,
                    op_labels: vec!["fadd".into(), "fmul".into()],
                    lines: vec![(0, 12), (1, 44)],
                    loops: vec![2, 5],
                    detail: Detail::Tiled {
                        partials: vec![vec![NodeId(3), NodeId(17)]],
                        final_chain: vec![NodeId(64)],
                    },
                },
                iteration: 2,
                reported: true,
            }],
            ddg_size: 500,
            simplified_size: 120,
            simplify_stats: SimplifyStats {
                nodes_before: 500,
                nodes_after: 120,
                iterator_removed: 300,
                address_removed: 80,
            },
            iterations: 2,
            subddgs_matched: 9,
        }
    }

    #[test]
    fn trace_codec_round_trips() {
        let a = sample_trace();
        let decoded = decode_trace(&mut Dec::new(&encode_trace(&a))).unwrap();
        assert_eq!(a, decoded);
    }

    #[test]
    fn find_codec_round_trips() {
        let a = sample_find();
        let decoded = decode_find(&mut Dec::new(&encode_find(&a))).unwrap();
        assert_eq!(format!("{a:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn save_load_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join("repro-query-persist-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let db = QueryDb::full(QueryConfig::default());
        let (tk, fk, ek) = (
            fingerprint_str("t"),
            fingerprint_str("f"),
            fingerprint_str("e"),
        );
        let exec = crate::ExecEntry {
            ddg_fp: fingerprint_str("ddg"),
            ddg_nodes: 1234,
        };
        db.trace_put(tk, sample_trace());
        db.find_put(fk, sample_find());
        db.exec_put(ek, exec);
        let saved = save_dir(&db, &dir).unwrap();
        assert_eq!(
            (saved.trace_records, saved.find_records, saved.exec_records),
            (1, 1, 1)
        );

        let db2 = QueryDb::full(QueryConfig::default());
        let report = load_dir(&db2, &dir);
        assert_eq!(report.records_loaded, 3);
        assert_eq!(report.segments_loaded, 1);
        assert_eq!(report.corrupt_records, 0);
        assert_eq!(*db2.trace_get(tk).unwrap(), sample_trace());
        assert_eq!(db2.exec_get(ek), Some(exec));
        assert_eq!(
            format!("{:?}", db2.find_get(fk).unwrap()),
            format!("{:?}", std::sync::Arc::new(sample_find()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_cold_cache() {
        let db = QueryDb::full(QueryConfig::default());
        let report = load_dir(&db, Path::new("/nonexistent/repro-query-cache"));
        assert_eq!(report.records_loaded, 0);
        assert_eq!(report.corrupt_segments, 0);
    }

    #[test]
    fn version_mismatch_is_skipped_and_counted() {
        let dir = std::env::temp_dir().join("repro-query-persist-version");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(CACHE_SCHEMA_VERSION + 1).to_le_bytes());
        std::fs::write(dir.join("segment-000.seg"), &bytes).unwrap();
        let db = QueryDb::full(QueryConfig::default());
        let report = load_dir(&db, &dir);
        assert_eq!(report.version_mismatches, 1);
        assert_eq!(report.records_loaded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_drops_the_record_not_the_loader() {
        let dir = std::env::temp_dir().join("repro-query-persist-bitflip");
        let _ = std::fs::remove_dir_all(&dir);
        let db = QueryDb::full(QueryConfig::default());
        db.trace_put(fingerprint_str("t"), sample_trace());
        save_dir(&db, &dir).unwrap();
        let path = dir.join("segment-000.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the record payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let db2 = QueryDb::full(QueryConfig::default());
        let report = load_dir(&db2, &dir);
        assert_eq!(report.records_loaded, 0);
        assert!(report.corrupt_records >= 1);
        assert!(db2.trace_get(fingerprint_str("t")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_segment_keeps_the_prefix() {
        let dir = std::env::temp_dir().join("repro-query-persist-trunc");
        let _ = std::fs::remove_dir_all(&dir);
        let db = QueryDb::full(QueryConfig::default());
        db.trace_put(fingerprint_str("t1"), sample_trace());
        db.find_put(fingerprint_str("f1"), sample_find());
        save_dir(&db, &dir).unwrap();
        let path = dir.join("segment-000.seg");
        let bytes = std::fs::read(&path).unwrap();
        // Drop the final 10 bytes: the last record loses its checksum.
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

        let db2 = QueryDb::full(QueryConfig::default());
        let report = load_dir(&db2, &dir);
        assert_eq!(report.records_loaded, 1, "the intact record survives");
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(report.corrupt_segments, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
