//! Cached stage outputs: what a trace or a finder run leaves behind,
//! in a form that can be replayed as if the stage had run.
//!
//! Both artifacts deliberately exclude wall-clock facts (phase times,
//! deadlines, degradation): only *complete* results are cached, and a
//! replayed result reports zero phase times — the time genuinely was
//! not spent. Parity over the semantic payload is what
//! [`crate::pattern_signature`] checks.

use discovery::{FinderResult, Found, SimplifyStats};
use repro_ir::{ContentHash, Value};
use std::collections::HashMap;
use trace::RunResult;

/// What a traced run leaves behind, minus the DDG itself (which is
/// re-identified by `ddg_fp` and whose downstream products live in the
/// sub-DDG and find stages). Keyed by `program_fp ⊕ input_fp`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArtifact {
    /// Content hash of the traced DDG — the key prefix of the find
    /// stage, and the link the dependency tracker records.
    pub ddg_fp: ContentHash,
    /// Node count of the traced DDG (reporting only).
    pub ddg_nodes: u64,
    /// Executed instruction count.
    pub steps: u64,
    /// Entry function's return value.
    pub return_value: Option<Value>,
    /// Final global-array contents, sorted by name (canonical order —
    /// `HashMap` iteration must not leak into the artifact).
    pub arrays: Vec<(String, Vec<Value>)>,
}

impl TraceArtifact {
    pub fn from_run(run: &RunResult, ddg_fp: ContentHash, ddg_nodes: usize) -> TraceArtifact {
        let mut arrays: Vec<(String, Vec<Value>)> = run
            .arrays
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        arrays.sort_by(|a, b| a.0.cmp(&b.0));
        TraceArtifact {
            ddg_fp,
            ddg_nodes: ddg_nodes as u64,
            steps: run.steps,
            return_value: run.return_value,
            arrays,
        }
    }

    /// Reconstructs the run result a full query hit hands back. The
    /// DDG is `None` — exactly what the engine's normal path leaves
    /// after taking the graph for analysis.
    pub fn to_run_result(&self) -> RunResult {
        RunResult {
            ddg: None,
            arrays: self
                .arrays
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect::<HashMap<_, _>>(),
            return_value: self.return_value,
            steps: self.steps,
            exec_fp: None,
        }
    }

    /// Approximate resident bytes (store accounting).
    pub fn approx_bytes(&self) -> usize {
        64 + self
            .arrays
            .iter()
            .map(|(k, v)| 48 + k.len() + 16 * v.len())
            .sum::<usize>()
    }
}

/// The exec-stage entry: which DDG an execution fingerprint
/// corresponds to. Keyed by the fingerprint itself
/// ([`trace::RunResult::exec_fp`]) — the streaming digest over the
/// executed instruction/address stream, which fully determines the
/// DDG. This is the edge that makes *edited* programs incremental: a
/// constant edit changes the program hash (trace-stage miss) but not
/// the execution stream, so a cheap untraced fingerprint run re-keys
/// the request to the cached DDG and the find stage replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecEntry {
    /// Content hash of the DDG this execution produces under tracing.
    pub ddg_fp: ContentHash,
    /// Node count of that DDG (reporting only).
    pub ddg_nodes: u64,
}

/// What a complete (non-degraded, non-cancelled) finder run leaves
/// behind. Keyed by `ddg_fp ⊕ config_fp`.
#[derive(Clone, Debug)]
pub struct FindArtifact {
    pub found: Vec<Found>,
    pub ddg_size: u64,
    pub simplified_size: u64,
    pub simplify_stats: SimplifyStats,
    pub iterations: u64,
    pub subddgs_matched: u64,
}

impl FindArtifact {
    /// Captures a finished result. The caller must have checked that
    /// the run was complete (`!degraded && !cancelled`) — a best-so-far
    /// result must never be replayed as definitive.
    pub fn from_result(r: &FinderResult) -> FindArtifact {
        FindArtifact {
            found: r.found.clone(),
            ddg_size: r.ddg_size as u64,
            simplified_size: r.simplified_size as u64,
            simplify_stats: r.simplify_stats,
            iterations: r.iterations as u64,
            subddgs_matched: r.subddgs_matched as u64,
        }
    }

    /// Replays the result. Phase times are zero (no time was spent) and
    /// the completeness flags are clean by construction.
    pub fn to_result(&self) -> FinderResult {
        FinderResult {
            found: self.found.clone(),
            ddg_size: self.ddg_size as usize,
            simplified_size: self.simplified_size as usize,
            simplify_stats: self.simplify_stats,
            iterations: self.iterations as usize,
            subddgs_matched: self.subddgs_matched as usize,
            phase_times: Default::default(),
            degraded: false,
            cancelled: false,
            matches_exhausted: 0,
            match_faults: 0,
        }
    }

    /// Approximate resident bytes (store accounting).
    pub fn approx_bytes(&self) -> usize {
        64 + self
            .found
            .iter()
            .map(|f| {
                let p = &f.pattern;
                let detail = match &p.detail {
                    discovery::patterns::Detail::None => 0,
                    discovery::patterns::Detail::Map { components } => {
                        components.iter().map(|c| 24 + 4 * c.len()).sum::<usize>()
                    }
                    discovery::patterns::Detail::Linear { chain } => 4 * chain.len(),
                    discovery::patterns::Detail::Tiled {
                        partials,
                        final_chain,
                    } => {
                        partials.iter().map(|c| 24 + 4 * c.len()).sum::<usize>()
                            + 4 * final_chain.len()
                    }
                };
                128 + p.nodes.capacity() / 8
                    + p.op_labels.iter().map(|l| 24 + l.len()).sum::<usize>()
                    + 8 * p.lines.len()
                    + 4 * p.loops.len()
                    + detail
            })
            .sum::<usize>()
    }
}
