//! `repro-query` — the incremental, content-addressed query layer
//! (DESIGN.md §18; ROADMAP open item 2).
//!
//! The analysis pipeline — minc parse → IR → trace → DDG → sub-DDG
//! decomposition → CP matching — is a chain of pure functions, so
//! every stage can be memoized under a canonical content hash of its
//! input, salsa-style (SNIPPETS.md Snippet 1's `db: &dyn Db` idiom):
//!
//! | stage     | key                                   | value |
//! |-----------|---------------------------------------|-------|
//! | `program` | source fingerprint                    | compiled [`Program`](repro_ir::Program) |
//! | `fnir`    | env fp ⊕ fn AST ⊕ id bases            | one lowered function |
//! | `trace`   | program fp ⊕ input fp                 | [`TraceArtifact`] (run summary + DDG fp) |
//! | `exec`    | execution fingerprint                 | [`ExecEntry`] (which DDG this stream produces) |
//! | `subddg`  | ddg fp ⊕ simplify flag ⊕ task index   | extracted sub-DDG pool slice |
//! | `find`    | ddg fp ⊕ finder-config fp             | [`FindArtifact`] (complete finder result) |
//! | `match`   | [`ddg::StructuralKey`] ⊕ budget       | match outcome in group space |
//!
//! Because keys are content hashes, *invalidation is mostly implicit*:
//! an edit produces new keys and simply misses, while unchanged
//! functions, traces, and structures keep hitting. The explicit
//! dependency edges recorded between stages (`program → trace → find`)
//! exist for the one case content addressing cannot express — evicting
//! a parent whose children must not be served stale, e.g. an operator
//! retiring a program version ([`QueryDb::invalidate`]).
//!
//! The match stage is the structural-hash [`MatchCache`] that PRs 1/6
//! grew (moved here intact, engine re-exports it at its old path); its
//! group-index-space encoding is what lets sub-DDGs from an *edited*
//! program hit match outcomes recorded for the unedited one.
//!
//! The trace, exec, and find stages persist across daemon restarts
//! ([`persist`]): versioned append-only segments, loaded on start,
//! rewritten on clean shutdown.

pub mod artifact;
pub mod match_cache;
pub mod persist;
pub mod store;

pub use artifact::{ExecEntry, FindArtifact, TraceArtifact};
pub use match_cache::{CacheMetrics, MatchCache, PendingEntry, Probe, DEFAULT_CACHE_CAPACITY};
pub use persist::{load_dir, save_dir, LoadReport, CACHE_SCHEMA_VERSION};
pub use store::{Store, StoreMetrics};

use ddg::Ddg;
use discovery::{FinderConfig, FinderResult, SubDdg};
use minc::{CachedFnIr, FnIrCache};
use repro_ir::{ContentHash, ContentHasher, Program};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use trace::RunConfig;

/// Which stage a key belongs to (dependency edges and invalidation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    Program,
    FnIr,
    Trace,
    Exec,
    SubDdg,
    Find,
}

/// Sizing for the full query DB. Every pipeline stage store gets the
/// same entry/byte caps; the match stage keeps its own (it has an
/// order of magnitude more, smaller, entries).
#[derive(Clone, Copy, Debug)]
pub struct QueryConfig {
    /// Match-stage LRU toggles and caps (PR 6 semantics).
    pub match_enabled: bool,
    pub match_capacity: usize,
    pub match_capacity_bytes: usize,
    /// Per-stage entry cap for the pipeline stores (0 = unbounded).
    pub stage_capacity: usize,
    /// Per-stage byte cap for the pipeline stores (0 = unbounded).
    /// Sub-DDG pools are the big entries; the byte cap is what really
    /// bounds a resident daemon's footprint.
    pub stage_capacity_bytes: usize,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            match_enabled: true,
            match_capacity: DEFAULT_CACHE_CAPACITY,
            match_capacity_bytes: 0,
            stage_capacity: 4096,
            stage_capacity_bytes: 64 << 20,
        }
    }
}

/// Aggregate statistics over every stage (serialized into `stats`
/// responses and `ObsReport` sections).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct QueryStats {
    pub full: bool,
    pub programs: StoreMetrics,
    pub fnir: StoreMetrics,
    pub trace: StoreMetrics,
    pub exec: StoreMetrics,
    pub subddg: StoreMetrics,
    pub find: StoreMetrics,
    pub match_cache: CacheMetrics,
    /// Explicit invalidations (cascaded entries included).
    pub invalidations: u64,
}

struct Stages {
    programs: Store<Program>,
    fnir: Store<CachedFnIr>,
    trace: Store<TraceArtifact>,
    exec: Store<ExecEntry>,
    subddg: Store<Vec<SubDdg>>,
    find: Store<FindArtifact>,
    /// parent key → children; edges are recorded at `put` sites
    /// (`program → trace`, `trace → find`) and walked by
    /// [`QueryDb::invalidate`].
    deps: Mutex<HashMap<u128, Vec<(StageKind, u128)>>>,
}

/// The shared, cross-request memo database. One instance lives behind
/// an `Arc` in the engine (and the daemon), shared by every worker.
///
/// Two construction modes:
/// - [`QueryDb::match_only`] — just the match-stage LRU, exactly the
///   PR 6 cache. This is what `Engine::new` builds: batch workloads
///   keep their existing behavior and metrics.
/// - [`QueryDb::full`] — all seven stages. This is what the daemon and
///   the incremental bench build: repeated and edited requests reuse
///   every unchanged stage.
pub struct QueryDb {
    match_cache: MatchCache,
    stages: Option<Stages>,
    invalidations: AtomicU64,
}

impl QueryDb {
    /// Match-stage only (the pre-incremental engine cache, unchanged).
    pub fn match_only(enabled: bool, capacity: usize, capacity_bytes: usize) -> QueryDb {
        QueryDb {
            match_cache: MatchCache::with_capacities(enabled, capacity, capacity_bytes),
            stages: None,
            invalidations: AtomicU64::new(0),
        }
    }

    /// The full pipeline DB.
    pub fn full(config: QueryConfig) -> QueryDb {
        QueryDb {
            match_cache: MatchCache::with_capacities(
                config.match_enabled,
                config.match_capacity,
                config.match_capacity_bytes,
            ),
            stages: Some(Stages {
                programs: Store::new(
                    "program",
                    config.stage_capacity,
                    config.stage_capacity_bytes,
                ),
                fnir: Store::new("fnir", config.stage_capacity, config.stage_capacity_bytes),
                trace: Store::new("trace", config.stage_capacity, config.stage_capacity_bytes),
                exec: Store::new("exec", config.stage_capacity, config.stage_capacity_bytes),
                subddg: Store::new("subddg", config.stage_capacity, config.stage_capacity_bytes),
                find: Store::new("find", config.stage_capacity, config.stage_capacity_bytes),
                deps: Mutex::new(HashMap::new()),
            }),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Whether the pipeline stages are enabled (vs match-only).
    pub fn is_full(&self) -> bool {
        self.stages.is_some()
    }

    pub fn match_cache(&self) -> &MatchCache {
        &self.match_cache
    }

    /// The per-function IR memo handle for
    /// [`minc::compile_files_with_cache`], when the DB is full.
    pub fn fn_ir_cache(&self) -> Option<&dyn FnIrCache> {
        self.stages.as_ref().map(|_| self as &dyn FnIrCache)
    }

    // ---- program stage ----

    pub fn program_get(&self, source_fp: ContentHash) -> Option<Arc<Program>> {
        self.stages.as_ref()?.programs.get(source_fp)
    }

    pub fn program_put(&self, source_fp: ContentHash, program: Arc<Program>) {
        if let Some(s) = &self.stages {
            // Serialized-IR length approximates the resident footprint
            // well enough for eviction purposes.
            let mut buf = String::new();
            use serde::Serialize;
            program.serialize_json(&mut buf);
            s.programs.put(source_fp, program, 64 + buf.len());
        }
    }

    // ---- trace stage ----

    pub fn trace_get(&self, key: ContentHash) -> Option<Arc<TraceArtifact>> {
        self.stages.as_ref()?.trace.get(key)
    }

    pub fn trace_put(&self, key: ContentHash, artifact: TraceArtifact) {
        if let Some(s) = &self.stages {
            let bytes = artifact.approx_bytes();
            s.trace.put(key, Arc::new(artifact), bytes);
        }
    }

    // ---- exec stage ----

    /// Which DDG an execution fingerprint corresponds to. The number
    /// of resident entries is also the engine's gate for running the
    /// fingerprint probe at all ([`QueryDb::exec_len`]).
    pub fn exec_get(&self, exec_fp: ContentHash) -> Option<ExecEntry> {
        self.stages.as_ref()?.exec.get(exec_fp).map(|e| *e)
    }

    pub fn exec_put(&self, exec_fp: ContentHash, entry: ExecEntry) {
        if let Some(s) = &self.stages {
            s.exec.put(exec_fp, Arc::new(entry), 64);
        }
    }

    /// Resident exec-stage entries. Zero means no traced run has
    /// recorded a fingerprint yet, so a probe run cannot hit — the
    /// engine skips the probe and keeps the cold path cold.
    pub fn exec_len(&self) -> usize {
        self.stages.as_ref().map(|s| s.exec.len()).unwrap_or(0)
    }

    // ---- sub-DDG stage ----

    pub fn subddg_get(&self, key: ContentHash) -> Option<Arc<Vec<SubDdg>>> {
        self.stages.as_ref()?.subddg.get(key)
    }

    pub fn subddg_put(&self, key: ContentHash, subs: Arc<Vec<SubDdg>>) {
        if let Some(s) = &self.stages {
            let bytes: usize = subs
                .iter()
                .map(|sub| {
                    64 + sub.nodes.capacity() / 8
                        + sub
                            .groups
                            .as_ref()
                            .map(|gs| gs.iter().map(|g| 24 + 4 * g.len()).sum::<usize>())
                            .unwrap_or(0)
                })
                .sum();
            s.subddg.put(key, subs, bytes);
        }
    }

    // ---- find stage ----

    pub fn find_get(&self, key: ContentHash) -> Option<Arc<FindArtifact>> {
        self.stages.as_ref()?.find.get(key)
    }

    pub fn find_put(&self, key: ContentHash, artifact: FindArtifact) {
        if let Some(s) = &self.stages {
            let bytes = artifact.approx_bytes();
            s.find.put(key, Arc::new(artifact), bytes);
        }
    }

    // ---- persistence snapshots ----

    /// Snapshot of the trace stage for the persistence writer, sorted
    /// by key (deterministic segments). Does not count hits or misses.
    pub fn export_trace(&self) -> Vec<(ContentHash, Arc<TraceArtifact>)> {
        let mut out = Vec::new();
        if let Some(s) = &self.stages {
            s.trace.for_each(|k, v| out.push((k, Arc::clone(v))));
        }
        out.sort_by_key(|(k, _)| k.0);
        out
    }

    /// Snapshot of the exec stage for the persistence writer, sorted
    /// by key. Does not count hits or misses.
    pub fn export_exec(&self) -> Vec<(ContentHash, ExecEntry)> {
        let mut out = Vec::new();
        if let Some(s) = &self.stages {
            s.exec.for_each(|k, v| out.push((k, **v)));
        }
        out.sort_by_key(|(k, _)| k.0);
        out
    }

    /// Snapshot of the find stage for the persistence writer, sorted
    /// by key. Does not count hits or misses.
    pub fn export_find(&self) -> Vec<(ContentHash, Arc<FindArtifact>)> {
        let mut out = Vec::new();
        if let Some(s) = &self.stages {
            s.find.for_each(|k, v| out.push((k, Arc::clone(v))));
        }
        out.sort_by_key(|(k, _)| k.0);
        out
    }

    // ---- dependency tracking & invalidation ----

    /// Records `parent → child` so invalidating the parent cascades.
    pub fn record_dep(&self, parent: ContentHash, child_stage: StageKind, child: ContentHash) {
        if let Some(s) = &self.stages {
            let mut deps = s
                .deps
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let children = deps.entry(parent.0).or_default();
            if !children.contains(&(child_stage, child.0)) {
                children.push((child_stage, child.0));
            }
        }
    }

    /// Drops a key from its stage and cascades along recorded
    /// dependency edges. Returns how many entries were dropped, and
    /// counts them in `query.invalidate`.
    pub fn invalidate(&self, stage: StageKind, key: ContentHash) -> u64 {
        let Some(s) = &self.stages else { return 0 };
        let mut dropped = 0;
        let mut work = vec![(stage, key.0)];
        while let Some((stage, key)) = work.pop() {
            let removed = match stage {
                StageKind::Program => s.programs.invalidate(ContentHash(key)),
                StageKind::FnIr => s.fnir.invalidate(ContentHash(key)),
                StageKind::Trace => s.trace.invalidate(ContentHash(key)),
                StageKind::Exec => s.exec.invalidate(ContentHash(key)),
                StageKind::SubDdg => s.subddg.invalidate(ContentHash(key)),
                StageKind::Find => s.find.invalidate(ContentHash(key)),
            };
            if removed {
                dropped += 1;
            }
            let children = {
                let mut deps = s
                    .deps
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                deps.remove(&key).unwrap_or_default()
            };
            work.extend(children);
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
            obs::counter("query.invalidate").add(dropped);
        }
        dropped
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    pub fn stats(&self) -> QueryStats {
        let mut stats = QueryStats {
            full: self.is_full(),
            match_cache: self.match_cache.metrics(),
            invalidations: self.invalidations(),
            ..Default::default()
        };
        if let Some(s) = &self.stages {
            stats.programs = s.programs.metrics();
            stats.fnir = s.fnir.metrics();
            stats.trace = s.trace.metrics();
            stats.exec = s.exec.metrics();
            stats.subddg = s.subddg.metrics();
            stats.find = s.find.metrics();
        }
        stats
    }
}

/// The per-function IR memo: minc consults this during pass 2 of
/// lowering ([`minc::lower_with_cache`] documents the key).
impl FnIrCache for QueryDb {
    fn get(&self, key: ContentHash) -> Option<CachedFnIr> {
        self.stages
            .as_ref()?
            .fnir
            .get(key)
            .map(|arc| (*arc).clone())
    }

    fn put(&self, key: ContentHash, value: CachedFnIr) {
        if let Some(s) = &self.stages {
            let mut buf = String::new();
            use serde::Serialize;
            value.func.serialize_json(&mut buf);
            let bytes = 64 + buf.len();
            s.fnir.put(key, Arc::new(value), bytes);
        }
    }
}

// ---- canonical fingerprints ----

/// Fingerprint of submitted source: program name plus every file's
/// name and contents, order-sensitive (file order determines file
/// indices in the IR).
pub fn fingerprint_source(program_name: &str, files: &[(&str, &str)]) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_str(program_name);
    h.write_u64(files.len() as u64);
    for (name, source) in files {
        h.write_str(name);
        h.write_str(source);
    }
    h.finish()
}

/// Fingerprint of the semantic run input: entry args, array sizing and
/// init, barrier shape, and fuel. Excludes the trace *mode*, deadline,
/// and worker count — those change how a run is recorded or bounded,
/// not what it computes, and the engine forces its own values anyway.
pub fn fingerprint_input(cfg: &RunConfig) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u64(cfg.entry_args.len() as u64);
    for v in &cfg.entry_args {
        write_value(&mut h, v);
    }
    let mut lens: Vec<_> = cfg.array_lens.iter().collect();
    lens.sort_by(|a, b| a.0.cmp(b.0));
    h.write_u64(lens.len() as u64);
    for (name, len) in lens {
        h.write_str(name);
        h.write_u64(*len as u64);
    }
    let mut inits: Vec<_> = cfg.array_init.iter().collect();
    inits.sort_by(|a, b| a.0.cmp(b.0));
    h.write_u64(inits.len() as u64);
    for (name, values) in inits {
        h.write_str(name);
        h.write_u64(values.len() as u64);
        for v in values {
            write_value(&mut h, v);
        }
    }
    h.write_u64(cfg.barrier_participants.len() as u64);
    for p in &cfg.barrier_participants {
        h.write_u64(*p as u64);
    }
    h.write_u64(cfg.max_steps);
    h.finish()
}

fn write_value(h: &mut ContentHasher, v: &repro_ir::Value) {
    match v {
        repro_ir::Value::I64(x) => {
            h.write_u32(1);
            h.write_u64(*x as u64);
        }
        repro_ir::Value::F64(x) => {
            h.write_u32(2);
            h.write_f64(*x);
        }
        repro_ir::Value::Bool(x) => {
            h.write_u32(3);
            h.write_u32(*x as u32);
        }
    }
}

/// Fingerprint of the finder configuration facts a result depends on:
/// per-sub-DDG budget, iteration cap, and the simplify toggle. The
/// request-level deadline is excluded — it bounds wall time, and
/// results that tripped it are never cached.
pub fn fingerprint_finder_config(cfg: &FinderConfig) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u64(cfg.budget.time.as_millis() as u64);
    h.write_u64(cfg.max_iterations as u64);
    h.write_u32(cfg.enable_simplify as u32);
    h.finish()
}

/// Fingerprint of a traced DDG: every node's label string,
/// associativity, static op, source position, thread, dynamic scope,
/// and tracer flags, plus the successor CSR. A single linear pass —
/// cheap relative to tracing, and byte-canonical (no interning order,
/// pointer, or map-iteration dependence).
pub fn fingerprint_ddg(g: &Ddg) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u64(g.len() as u64);
    for id in g.node_ids() {
        let n = g.node(id);
        h.write_str(g.label_str(n.label));
        h.write_u32(g.label_is_associative(n.label) as u32);
        h.write_u32(n.static_op);
        h.write_u32(n.file as u32);
        h.write_u32(n.line);
        h.write_u32(n.col);
        h.write_u32(n.thread as u32);
        h.write_u64(n.scope.len() as u64);
        for e in n.scope.iter() {
            h.write_u32(e.loop_id);
            h.write_u32(e.instance);
            h.write_u32(e.iter);
        }
        h.write_u32(n.flags.0 as u32);
    }
    h.write_u64(g.arc_count() as u64);
    for (src, dst) in g.arcs() {
        h.write_u32(src.0);
        h.write_u32(dst.0);
    }
    h.finish()
}

/// The composed trace-stage key.
pub fn trace_key(program_fp: ContentHash, input_fp: ContentHash) -> ContentHash {
    program_fp.combine(input_fp)
}

/// The composed find-stage key.
pub fn find_key(ddg_fp: ContentHash, config_fp: ContentHash) -> ContentHash {
    ddg_fp.combine(config_fp)
}

/// The composed sub-DDG-stage key for one extraction task.
pub fn subddg_key(ddg_fp: ContentHash, enable_simplify: bool, task_index: usize) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_u64((ddg_fp.0 >> 64) as u64);
    h.write_u64(ddg_fp.0 as u64);
    h.write_u32(enable_simplify as u32);
    h.write_u64(task_index as u64);
    h.finish()
}

/// Canonical textual signature of a finder result's *semantic* payload
/// — everything the parity gate compares between a cold pipeline and
/// an incremental replay. Phase times and degradation flags are
/// timing, not semantics, and are excluded (results that degraded are
/// never cached in the first place).
pub fn pattern_signature(r: &FinderResult) -> String {
    let mut s = String::new();
    let st = &r.simplify_stats;
    let _ = writeln!(
        s,
        "ddg={} simplified={} stats=({},{},{},{}) iters={} subddgs={}",
        r.ddg_size,
        r.simplified_size,
        st.nodes_before,
        st.nodes_after,
        st.iterator_removed,
        st.address_removed,
        r.iterations,
        r.subddgs_matched,
    );
    for f in &r.found {
        let p = &f.pattern;
        let nodes: Vec<usize> = p.nodes.iter().collect();
        let _ = writeln!(
            s,
            "{:?} iter={} reported={} components={} labels={:?} lines={:?} loops={:?} \
             detail={:?} nodes={:?}",
            p.kind,
            f.iteration,
            f.reported,
            p.components,
            p.op_labels,
            p.lines,
            p.loops,
            p.detail,
            nodes,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray_rot_program(edit: Option<(&str, &str)>) -> Program {
        let bench = starbench::benchmark("ray-rot").unwrap();
        let files: Vec<(String, String)> = bench
            .files(starbench::Version::Seq)
            .iter()
            .map(|(n, src)| {
                let src = match edit {
                    Some((from, to)) => src.replace(from, to),
                    None => src.to_string(),
                };
                (n.to_string(), src)
            })
            .collect();
        let refs: Vec<(&str, &str)> = files
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        minc::compile_files("ray-rot-seq", &refs).unwrap()
    }

    #[test]
    fn program_fingerprint_is_stable_and_edit_sensitive() {
        let a = repro_ir::fingerprint_program(&ray_rot_program(None));
        let b = repro_ir::fingerprint_program(&ray_rot_program(None));
        assert_eq!(a, b, "recompiling identical source must fingerprint equal");
        let edited = repro_ir::fingerprint_program(&ray_rot_program(Some(("0.95", "0.85"))));
        assert_ne!(a, edited, "a constant edit must change the program hash");
    }

    #[test]
    fn input_fingerprint_ignores_trace_plumbing() {
        let bench = starbench::benchmark("ray-rot").unwrap();
        let base = (bench.analysis_input)();
        let a = fingerprint_input(&base);
        let mut plumbing = (bench.analysis_input)();
        plumbing.trace_workers = 8;
        plumbing.deadline = Some(std::time::Instant::now());
        assert_eq!(a, fingerprint_input(&plumbing));
        let mut semantic = (bench.analysis_input)();
        semantic.max_steps += 1;
        assert_ne!(a, fingerprint_input(&semantic));
    }

    #[test]
    fn ddg_fingerprint_identical_for_identical_runs() {
        let bench = starbench::benchmark("ray-rot").unwrap();
        let program = ray_rot_program(None);
        let run1 = trace::run(&program, &(bench.analysis_input)()).unwrap();
        let run2 = trace::run(&program, &(bench.analysis_input)()).unwrap();
        let fp1 = fingerprint_ddg(run1.ddg.as_ref().unwrap());
        let fp2 = fingerprint_ddg(run2.ddg.as_ref().unwrap());
        assert_eq!(fp1, fp2);
    }

    #[test]
    fn full_db_round_trips_every_stage() {
        let db = QueryDb::full(QueryConfig::default());
        assert!(db.is_full());
        let program = Arc::new(ray_rot_program(None));
        let source_fp = fingerprint_source("p", &[("a.mc", "void main() {}")]);
        assert!(db.program_get(source_fp).is_none());
        db.program_put(source_fp, Arc::clone(&program));
        assert!(db.program_get(source_fp).is_some());

        let tk = trace_key(fingerprint_str_local("p"), fingerprint_str_local("i"));
        let art = TraceArtifact {
            ddg_fp: fingerprint_str_local("d"),
            ddg_nodes: 10,
            steps: 100,
            return_value: None,
            arrays: vec![("x".into(), vec![repro_ir::Value::I64(1)])],
        };
        db.trace_put(tk, art.clone());
        assert_eq!(*db.trace_get(tk).unwrap(), art);

        let stats = db.stats();
        assert!(stats.full);
        assert_eq!(stats.trace.hits, 1);
        assert_eq!(stats.programs.hits, 1);
        assert_eq!(stats.programs.misses, 1);
    }

    #[test]
    fn invalidation_cascades_along_recorded_deps() {
        let db = QueryDb::full(QueryConfig::default());
        let (pk, tk, fk) = (
            fingerprint_str_local("prog"),
            fingerprint_str_local("trace"),
            fingerprint_str_local("find"),
        );
        db.trace_put(
            tk,
            TraceArtifact {
                ddg_fp: fingerprint_str_local("d"),
                ddg_nodes: 1,
                steps: 1,
                return_value: None,
                arrays: vec![],
            },
        );
        db.find_put(
            fk,
            FindArtifact {
                found: vec![],
                ddg_size: 1,
                simplified_size: 1,
                simplify_stats: Default::default(),
                iterations: 1,
                subddgs_matched: 0,
            },
        );
        db.record_dep(pk, StageKind::Trace, tk);
        db.record_dep(tk, StageKind::Find, fk);
        let dropped = db.invalidate(StageKind::Program, pk);
        assert_eq!(dropped, 2, "trace and find entries cascade");
        assert!(db.trace_get(tk).is_none());
        assert!(db.find_get(fk).is_none());
        assert_eq!(db.invalidations(), 2);
    }

    #[test]
    fn match_only_db_ignores_stage_calls() {
        let db = QueryDb::match_only(true, 16, 0);
        assert!(!db.is_full());
        assert!(db.fn_ir_cache().is_none());
        let k = fingerprint_str_local("k");
        db.trace_put(
            k,
            TraceArtifact {
                ddg_fp: k,
                ddg_nodes: 0,
                steps: 0,
                return_value: None,
                arrays: vec![],
            },
        );
        assert!(db.trace_get(k).is_none());
        assert_eq!(db.invalidate(StageKind::Trace, k), 0);
    }

    fn fingerprint_str_local(s: &str) -> ContentHash {
        repro_ir::fingerprint_str(s)
    }
}
