//! The generic sharded LRU behind every query stage.
//!
//! Same discipline as the match cache (DESIGN.md §12): shards keyed by
//! hash, per-shard entry *and* byte caps with whichever trips first
//! driving eviction, lazy recency queues, and poison recovery that
//! clears only the affected shard — a memo table may always drop
//! entries, never serve half-written ones. Keys here are
//! [`ContentHash`]es (already uniform), values are `Arc`s so readers
//! never hold a shard lock while using an entry.

use repro_ir::ContentHash;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const SHARDS: usize = 8;

/// Counter snapshot for one stage store.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct StoreMetrics {
    pub entries: usize,
    pub capacity: usize,
    pub capacity_bytes: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub approx_bytes: u64,
    pub poison_recoveries: u64,
}

struct Slot<V> {
    value: Arc<V>,
    stamp: u64,
    bytes: usize,
}

struct Shard<V> {
    map: HashMap<u128, Slot<V>>,
    recency: VecDeque<(u128, u64)>,
    clock: u64,
    bytes: usize,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            recency: VecDeque::new(),
            clock: 0,
            bytes: 0,
        }
    }
}

impl<V> Shard<V> {
    fn touch(&mut self, key: u128) {
        if let Some(slot) = self.map.get_mut(&key) {
            self.clock += 1;
            slot.stamp = self.clock;
            self.recency.push_back((key, self.clock));
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    fn insert(
        &mut self,
        key: u128,
        value: Arc<V>,
        bytes: usize,
        cap: usize,
        byte_cap: usize,
    ) -> u64 {
        self.clock += 1;
        let old = self.map.insert(
            key,
            Slot {
                value,
                stamp: self.clock,
                bytes,
            },
        );
        self.bytes += bytes;
        if let Some(old) = old {
            self.bytes -= old.bytes;
        }
        self.recency.push_back((key, self.clock));
        let mut evicted = 0;
        while (self.map.len() > cap || self.bytes > byte_cap) && !self.map.is_empty() {
            match self.recency.pop_front() {
                Some((k, stamp)) => {
                    if self.map.get(&k).is_some_and(|slot| slot.stamp == stamp) {
                        let slot = self.map.remove(&k).unwrap();
                        self.bytes -= slot.bytes;
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        if self.recency.len() > 4 * self.map.len() + 16 {
            let map = &self.map;
            self.recency
                .retain(|(k, stamp)| map.get(k).is_some_and(|slot| slot.stamp == *stamp));
        }
        evicted
    }
}

/// A size-capped, sharded, content-addressed memo store for one query
/// stage. `name` labels the stage's `query.<name>.hit` / `.miss`
/// registry counters.
pub struct Store<V> {
    /// Registry counter handles, resolved once — stage probes are hot
    /// (one per sub-DDG task), a name lookup per probe is not.
    hit_counter: obs::Counter,
    miss_counter: obs::Counter,
    eviction_counter: obs::Counter,
    shards: Vec<Mutex<Shard<V>>>,
    shard_cap: usize,
    capacity: usize,
    shard_byte_cap: usize,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl<V> Store<V> {
    /// A store bounded at `capacity` entries and `capacity_bytes`
    /// approximate bytes (0 = unbounded, independently per cap).
    pub fn new(name: &'static str, capacity: usize, capacity_bytes: usize) -> Store<V> {
        let shards = if capacity == 0 {
            SHARDS
        } else {
            SHARDS.min(capacity)
        };
        Store {
            hit_counter: obs::counter(&format!("query.{name}.hit")),
            miss_counter: obs::counter(&format!("query.{name}.miss")),
            eviction_counter: obs::counter(&format!("query.{name}.evictions")),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: if capacity == 0 {
                usize::MAX
            } else {
                capacity / shards
            },
            capacity,
            shard_byte_cap: if capacity_bytes == 0 {
                usize::MAX
            } else {
                capacity_bytes / shards
            },
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: u128) -> MutexGuard<'_, Shard<V>> {
        // The key is already a content hash; fold it for shard choice.
        let idx = ((key >> 64) as u64 ^ key as u64) as usize % self.shards.len();
        let shard = &self.shards[idx];
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                shard.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Looks a key up, counting the hit or miss (registry counters
    /// `query.<name>.hit` / `query.<name>.miss`). A hit is a touch.
    pub fn get(&self, key: ContentHash) -> Option<Arc<V>> {
        let found = {
            let mut shard = self.shard_for(key.0);
            let found = shard.map.get(&key.0).map(|slot| Arc::clone(&slot.value));
            if found.is_some() {
                shard.touch(key.0);
            }
            found
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.miss_counter.inc();
        }
        found
    }

    /// Looks a key up without counting a hit or a miss — for the
    /// persistence writer and other bookkeeping that must not skew the
    /// hit-rate statistics.
    pub fn peek(&self, key: ContentHash) -> Option<Arc<V>> {
        self.shard_for(key.0)
            .map
            .get(&key.0)
            .map(|slot| Arc::clone(&slot.value))
    }

    /// Inserts a value with a caller-estimated byte cost.
    pub fn put(&self, key: ContentHash, value: Arc<V>, bytes: usize) {
        let (cap, byte_cap) = (self.shard_cap, self.shard_byte_cap);
        let evicted = self
            .shard_for(key.0)
            .insert(key.0, value, bytes, cap, byte_cap);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.eviction_counter.add(evicted);
        }
    }

    /// Drops a key (dependency-driven invalidation). Returns whether an
    /// entry was present.
    pub fn invalidate(&self, key: ContentHash) -> bool {
        let removed = {
            let mut shard = self.shard_for(key.0);
            match shard.map.remove(&key.0) {
                Some(slot) => {
                    shard.bytes -= slot.bytes;
                    true
                }
                None => false,
            }
        };
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Visits every resident entry (persistence writer). Shard locks
    /// are taken one at a time; entries inserted concurrently may or
    /// may not be seen.
    pub fn for_each(&self, mut f: impl FnMut(ContentHash, &Arc<V>)) {
        for shard in &self.shards {
            let guard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (k, slot) in &guard.map {
                f(ContentHash(*k), &slot.value);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn approx_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes as u64
            })
            .sum()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            entries: self.len(),
            capacity: self.capacity,
            capacity_bytes: self.capacity_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            approx_bytes: self.approx_bytes(),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_ir::fingerprint_str;

    #[test]
    fn entry_cap_evicts_lru() {
        let store: Store<u64> = Store::new("test", 1, 0);
        let (a, b) = (fingerprint_str("a"), fingerprint_str("b"));
        store.put(a, Arc::new(1), 8);
        store.put(b, Arc::new(2), 8);
        assert_eq!(store.len(), 1);
        assert!(store.get(a).is_none());
        assert_eq!(*store.get(b).unwrap(), 2);
        let m = store.metrics();
        assert_eq!(m.evictions, 1);
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 1);
    }

    #[test]
    fn byte_cap_bounds_footprint() {
        let store: Store<u64> = Store::new("test", 1000, 100);
        // One shard would get 100/8 = 12 bytes; insert 20-byte entries
        // so each insert evicts the previous resident of its shard.
        for i in 0..50u64 {
            store.put(fingerprint_str(&i.to_string()), Arc::new(i), 20);
        }
        assert!(store.approx_bytes() <= 100);
        assert!(store.metrics().evictions > 0);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let store: Store<u64> = Store::new("test", 0, 0);
        let k = fingerprint_str("k");
        store.put(k, Arc::new(7), 8);
        assert!(store.invalidate(k));
        assert!(!store.invalidate(k));
        assert!(store.get(k).is_none());
        assert_eq!(store.invalidations(), 1);
    }

    #[test]
    fn poisoned_shards_recover_by_clearing() {
        let store: Store<u64> = Store::new("test", 0, 0);
        let k = fingerprint_str("k");
        store.put(k, Arc::new(7), 8);
        for shard in &store.shards {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("die holding the store lock");
            }));
            assert!(caught.is_err());
        }
        assert!(store.get(k).is_none(), "poisoned shard must clear");
        assert!(store.metrics().poison_recoveries >= 1);
        store.put(k, Arc::new(7), 8);
        assert_eq!(*store.get(k).unwrap(), 7);
    }
}
