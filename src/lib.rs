pub use discovery; pub use ddg; pub use minc; pub use repro_ir; pub use trace; pub use cp; pub use skeletons; pub use starbench;
