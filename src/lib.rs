pub use cp;
pub use ddg;
pub use discovery;
pub use minc;
pub use repro_ir;
pub use skeletons;
pub use starbench;
pub use trace;
